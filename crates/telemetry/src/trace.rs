//! Flight-recorder tracing and per-window provenance.
//!
//! Numeric telemetry (the [`crate::Registry`]) tells an operator *that*
//! completeness dipped or the controller moved K; this module explains
//! *why*. Components record structured [`TraceEvent`]s into a bounded,
//! lock-cheap ring buffer ([`FlightRecorder`]): late arrivals with their
//! lateness and the windows they missed, buffer releases, controller
//! K-changes with the decision reason, window finalizations, shard
//! send-stalls and merge progress. Every event carries a monotone sequence
//! number (assigned under the ring lock, so ring order *is* seq order),
//! the event-time it refers to, and the shard that produced it — parallel
//! runs therefore interleave deterministically on replay.
//!
//! On top of the raw ring, [`ProvenanceBuilder`] assembles one
//! [`ProvenanceRecord`] per window (contributing/late/dropped tuple counts,
//! lateness quantiles, the K in force and the decision that set it) and —
//! for windows that miss their quality target — a [`PostMortem`]: the
//! causal slice of the ring covering that window's lifetime, serializable
//! to JSON-lines and rendered by the `quill-inspect` tool.
//!
//! Like the registry, a [`FlightRecorder::disabled`] recorder is a `None`
//! behind the same API: every `record` call is a branch the optimiser
//! folds away, so instrumentation can stay in place unconditionally.
//!
//! Serialization is hand-rolled JSON-lines (this workspace carries no JSON
//! dependency): [`TraceEvent::to_json_line`] /
//! [`TraceEvent::parse_json_line`] round-trip exactly, property of the
//! tests below.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Shard id used for events produced outside any shard (the result merge,
/// the router).
pub const MERGE_SHARD: u32 = u32::MAX;

/// Default ring capacity for an enabled recorder.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Why a disorder-control strategy changed K.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KChangeReason {
    /// The K a strategy starts with (recorded once at trace attach).
    Initial,
    /// AQ warm-up: K follows the maximum observed delay while the delay
    /// sample fills.
    Warmup,
    /// A regular AQ adaptation step moved K to the estimator quantile.
    Adapt,
    /// The AQ shrink rate-limiter held K above the model's candidate.
    ShrinkLimited,
    /// The candidate was clamped at `k_min`/`k_max`.
    BoundClamped,
    /// MP-style ratchet: a new maximum delay raised K.
    Ratchet,
}

impl KChangeReason {
    /// Stable serialization token.
    pub fn as_str(self) -> &'static str {
        match self {
            KChangeReason::Initial => "initial",
            KChangeReason::Warmup => "warmup",
            KChangeReason::Adapt => "adapt",
            KChangeReason::ShrinkLimited => "shrink_limited",
            KChangeReason::BoundClamped => "bound_clamped",
            KChangeReason::Ratchet => "ratchet",
        }
    }

    /// Parse a serialization token.
    pub fn parse(s: &str) -> Option<KChangeReason> {
        Some(match s {
            "initial" => KChangeReason::Initial,
            "warmup" => KChangeReason::Warmup,
            "adapt" => KChangeReason::Adapt,
            "shrink_limited" => KChangeReason::ShrinkLimited,
            "bound_clamped" => KChangeReason::BoundClamped,
            "ratchet" => KChangeReason::Ratchet,
            _ => return None,
        })
    }
}

impl std::fmt::Display for KChangeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. Each variant is one observable decision or incident on
/// the quality path.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// An event arrived behind the emitted watermark: the buffer can no
    /// longer reorder it and forwards it as a late pass. `at` is the
    /// event's timestamp.
    LateArrival {
        /// How far behind the watermark the event arrived.
        lateness: u64,
        /// The watermark it arrived behind.
        watermark: u64,
    },
    /// The ordering buffer released events and advanced its watermark.
    /// `at` is the new watermark.
    BufferEmit {
        /// Events released by this advance.
        released: u64,
        /// The watermark emitted (`u64::MAX` at end of stream).
        watermark: u64,
    },
    /// A strategy changed the slack bound. `at` is the stream clock (event
    /// time) at the decision.
    KChange {
        /// K before the change.
        old_k: u64,
        /// K after the change.
        new_k: u64,
        /// What triggered it.
        reason: KChangeReason,
    },
    /// A window's first result was emitted. `at` is the window end.
    WindowFinalize {
        /// Window start.
        start: u64,
        /// Window end.
        end: u64,
        /// Stringified grouping key (matches quality reports).
        key: String,
        /// Tuples folded into the emitted result.
        count: u64,
    },
    /// The window operator discarded a late event for at least one
    /// already-finalized window. `at` is the event's timestamp.
    LateDrop {
        /// Arrival sequence number of the dropped event.
        event_seq: u64,
        /// `(start, end)` of every finalized window the event missed.
        windows: Vec<(u64, u64)>,
    },
    /// The parallel router hit a shard channel at capacity (backpressure).
    /// `at` is the timestamp of the first event in the stalled batch.
    SendStall {
        /// In-flight batches at the stall.
        depth: u64,
    },
    /// The result merge ran. `at` is 0; the shard is [`MERGE_SHARD`].
    MergeProgress {
        /// Elements merged.
        elements: u64,
        /// Whether the stable-sort fallback was taken.
        fallback: bool,
    },
}

impl TraceKind {
    /// Stable serialization token for the variant.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::LateArrival { .. } => "late_arrival",
            TraceKind::BufferEmit { .. } => "buffer_emit",
            TraceKind::KChange { .. } => "k_change",
            TraceKind::WindowFinalize { .. } => "window_finalize",
            TraceKind::LateDrop { .. } => "late_drop",
            TraceKind::SendStall { .. } => "send_stall",
            TraceKind::MergeProgress { .. } => "merge_progress",
        }
    }
}

/// One recorded incident: a monotone sequence number (ring order), the
/// event-time it refers to, the shard that recorded it, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotone sequence number, assigned under the ring lock.
    pub seq: u64,
    /// Event-time the incident refers to (variant-specific; see
    /// [`TraceKind`]).
    pub at: u64,
    /// Shard that recorded the event (0 for pre-fan-out components,
    /// [`MERGE_SHARD`] for the merge).
    pub shard: u32,
    /// The payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render as one JSON object on a single line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"at\":{},\"shard\":{},\"kind\":\"{}\"",
            self.seq,
            self.at,
            self.shard,
            self.kind.label()
        );
        match &self.kind {
            TraceKind::LateArrival {
                lateness,
                watermark,
            } => {
                let _ = write!(out, ",\"lateness\":{lateness},\"watermark\":{watermark}");
            }
            TraceKind::BufferEmit {
                released,
                watermark,
            } => {
                let _ = write!(out, ",\"released\":{released},\"watermark\":{watermark}");
            }
            TraceKind::KChange {
                old_k,
                new_k,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"old_k\":{old_k},\"new_k\":{new_k},\"reason\":\"{}\"",
                    reason.as_str()
                );
            }
            TraceKind::WindowFinalize {
                start,
                end,
                key,
                count,
            } => {
                let _ = write!(
                    out,
                    ",\"start\":{start},\"end\":{end},\"key\":{},\"count\":{count}",
                    json_string(key)
                );
            }
            TraceKind::LateDrop { event_seq, windows } => {
                let _ = write!(out, ",\"event_seq\":{event_seq},\"windows\":[");
                for (i, (s, e)) in windows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{s},{e}]");
                }
                out.push(']');
            }
            TraceKind::SendStall { depth } => {
                let _ = write!(out, ",\"depth\":{depth}");
            }
            TraceKind::MergeProgress { elements, fallback } => {
                let _ = write!(out, ",\"elements\":{elements},\"fallback\":{fallback}");
            }
        }
        out.push('}');
        out
    }

    /// Parse one line produced by [`TraceEvent::to_json_line`].
    ///
    /// # Errors
    /// A message naming the malformed or missing field.
    pub fn parse_json_line(line: &str) -> Result<TraceEvent, String> {
        let fields = Fields::parse(line)?;
        trace_event_from_fields(&fields)
    }
}

fn trace_event_from_fields(fields: &Fields) -> Result<TraceEvent, String> {
    let kind_label = fields.str("kind")?;
    let kind = match kind_label.as_str() {
        "late_arrival" => TraceKind::LateArrival {
            lateness: fields.u64("lateness")?,
            watermark: fields.u64("watermark")?,
        },
        "buffer_emit" => TraceKind::BufferEmit {
            released: fields.u64("released")?,
            watermark: fields.u64("watermark")?,
        },
        "k_change" => TraceKind::KChange {
            old_k: fields.u64("old_k")?,
            new_k: fields.u64("new_k")?,
            reason: KChangeReason::parse(&fields.str("reason")?)
                .ok_or_else(|| format!("unknown k-change reason {:?}", fields.str("reason")))?,
        },
        "window_finalize" => TraceKind::WindowFinalize {
            start: fields.u64("start")?,
            end: fields.u64("end")?,
            key: fields.str("key")?,
            count: fields.u64("count")?,
        },
        "late_drop" => TraceKind::LateDrop {
            event_seq: fields.u64("event_seq")?,
            windows: fields.pairs("windows")?,
        },
        "send_stall" => TraceKind::SendStall {
            depth: fields.u64("depth")?,
        },
        "merge_progress" => TraceKind::MergeProgress {
            elements: fields.u64("elements")?,
            fallback: fields.bool("fallback")?,
        },
        other => return Err(format!("unknown trace kind {other:?}")),
    };
    Ok(TraceEvent {
        seq: fields.u64("seq")?,
        at: fields.u64("at")?,
        shard: fields.u64("shard")? as u32,
        kind,
    })
}

/// The bounded ring behind an enabled recorder.
#[derive(Debug, Default)]
struct Ring {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<TraceEvent>,
}

#[derive(Debug)]
struct RecorderInner {
    capacity: usize,
    ring: Mutex<Ring>,
}

/// A lock-cheap, bounded flight recorder of [`TraceEvent`]s. Clone it
/// freely — clones share the ring. [`FlightRecorder::disabled`] (also
/// `Default`) is the zero-cost variant: `record` is a branch on `None`.
///
/// When the ring is full the oldest event is overwritten and
/// [`FlightRecorder::dropped`] counts it, so memory stays bounded on
/// arbitrarily long runs while the most recent history — what a
/// post-mortem needs — is retained.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder(Option<Arc<RecorderInner>>);

impl FlightRecorder {
    /// An enabled recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder(Some(Arc::new(RecorderInner {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        })))
    }

    /// An enabled recorder with [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_TRACE_CAPACITY)
    }

    /// A disabled recorder: same API, every call a no-op.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder(None)
    }

    /// Whether [`FlightRecorder::record`] actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one event. The sequence number is assigned under the ring
    /// lock, so ring order equals seq order even across threads.
    #[inline]
    pub fn record(&self, at: u64, shard: u32, kind: TraceKind) {
        if let Some(inner) = &self.0 {
            let mut ring = inner.ring.lock();
            let seq = ring.next_seq;
            ring.next_seq += 1;
            if ring.buf.len() >= inner.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(TraceEvent {
                seq,
                at,
                shard,
                kind,
            });
        }
    }

    /// Events currently held, oldest first (seq order). Empty when
    /// disabled.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner.ring.lock().buf.iter().cloned().collect()
        })
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| inner.ring.lock().dropped)
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.ring.lock().buf.len())
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.0.as_ref().map_or(0, |inner| inner.capacity)
    }
}

/// Everything known about how one window's result came to be.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Window start.
    pub start: u64,
    /// Window end.
    pub end: u64,
    /// Stringified grouping key.
    pub key: String,
    /// Tuples folded into the emitted result (0 if never emitted).
    pub contributing: u64,
    /// Late passes whose event-time fell inside the window.
    pub late_arrivals: u64,
    /// Late tuples the operator dropped *for this window*.
    pub dropped: u64,
    /// Median lateness of this window's late arrivals (0 when none).
    pub lateness_p50: u64,
    /// Maximum lateness of this window's late arrivals (0 when none).
    pub lateness_max: u64,
    /// The K in force when the window finalized (last K-change before the
    /// finalize), if any K decision was recorded.
    pub k_at_finalize: Option<u64>,
    /// Sequence number of that K decision.
    pub k_decision_seq: Option<u64>,
    /// What triggered that K decision.
    pub k_decision_reason: Option<KChangeReason>,
    /// Completeness the run achieved for this window.
    pub achieved_completeness: f64,
    /// The completeness the run was asked for, when a target was set.
    pub required_completeness: Option<f64>,
    /// Whether the window missed its target.
    pub violated: bool,
    /// Sequence number of the finalize event (`None` if the window was
    /// never emitted).
    pub finalize_seq: Option<u64>,
}

impl ProvenanceRecord {
    /// Render as one JSON object on a single line (kind `provenance`).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"kind\":\"provenance\",\"start\":{},\"end\":{},\"key\":{},\
             \"contributing\":{},\"late_arrivals\":{},\"dropped\":{},\
             \"lateness_p50\":{},\"lateness_max\":{},\"achieved\":{},\"violated\":{}",
            self.start,
            self.end,
            json_string(&self.key),
            self.contributing,
            self.late_arrivals,
            self.dropped,
            self.lateness_p50,
            self.lateness_max,
            fmt_json_f64(self.achieved_completeness),
            self.violated
        );
        if let Some(r) = self.required_completeness {
            let _ = write!(out, ",\"required\":{}", fmt_json_f64(r));
        }
        if let Some(k) = self.k_at_finalize {
            let _ = write!(out, ",\"k_at_finalize\":{k}");
        }
        if let Some(s) = self.k_decision_seq {
            let _ = write!(out, ",\"k_seq\":{s}");
        }
        if let Some(r) = self.k_decision_reason {
            let _ = write!(out, ",\"k_reason\":\"{}\"", r.as_str());
        }
        if let Some(s) = self.finalize_seq {
            let _ = write!(out, ",\"finalize_seq\":{s}");
        }
        out.push('}');
        out
    }

    /// Parse one line produced by [`ProvenanceRecord::to_json_line`].
    ///
    /// # Errors
    /// A message naming the malformed or missing field.
    pub fn parse_json_line(line: &str) -> Result<ProvenanceRecord, String> {
        let fields = Fields::parse(line)?;
        provenance_from_fields(&fields)
    }
}

fn provenance_from_fields(fields: &Fields) -> Result<ProvenanceRecord, String> {
    if fields.str("kind")? != "provenance" {
        return Err("not a provenance record".into());
    }
    let k_decision_reason = match fields.opt_str("k_reason") {
        None => None,
        Some(s) => {
            Some(KChangeReason::parse(&s).ok_or_else(|| format!("unknown k-change reason {s:?}"))?)
        }
    };
    Ok(ProvenanceRecord {
        start: fields.u64("start")?,
        end: fields.u64("end")?,
        key: fields.str("key")?,
        contributing: fields.u64("contributing")?,
        late_arrivals: fields.u64("late_arrivals")?,
        dropped: fields.u64("dropped")?,
        lateness_p50: fields.u64("lateness_p50")?,
        lateness_max: fields.u64("lateness_max")?,
        k_at_finalize: fields.opt_u64("k_at_finalize")?,
        k_decision_seq: fields.opt_u64("k_seq")?,
        k_decision_reason,
        achieved_completeness: fields.f64("achieved")?,
        required_completeness: fields.opt_f64("required")?,
        violated: fields.bool("violated")?,
        finalize_seq: fields.opt_u64("finalize_seq")?,
    })
}

/// A violated window's provenance plus the causal slice of the ring that
/// explains it: the late arrivals and drops belonging to the window and
/// the controller moves during its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The window's provenance.
    pub record: ProvenanceRecord,
    /// The causal trace slice, in seq order.
    pub slice: Vec<TraceEvent>,
}

impl PostMortem {
    /// One provenance header line followed by the slice's event lines.
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(1 + self.slice.len());
        lines.push(self.record.to_json_line());
        lines.extend(self.slice.iter().map(TraceEvent::to_json_line));
        lines
    }
}

/// Flatten post-mortems into a JSONL artifact body (header line + slice
/// lines per violation).
pub fn post_mortems_to_lines(pms: &[PostMortem]) -> Vec<String> {
    pms.iter().flat_map(PostMortem::to_jsonl_lines).collect()
}

/// One parsed line of a trace/post-mortem JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// A raw flight-recorder event.
    Event(TraceEvent),
    /// A provenance header.
    Provenance(ProvenanceRecord),
}

/// Parse one JSONL line into either a trace event or a provenance header.
///
/// # Errors
/// A message naming the malformed or missing field.
pub fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    let fields = Fields::parse(line)?;
    if fields.str("kind")? == "provenance" {
        Ok(TraceLine::Provenance(provenance_from_fields(&fields)?))
    } else {
        Ok(TraceLine::Event(trace_event_from_fields(&fields)?))
    }
}

/// Parse a post-mortem JSONL body back into [`PostMortem`]s: each
/// provenance header starts a new post-mortem that owns the following
/// event lines. Blank lines are skipped.
///
/// # Errors
/// Malformed lines, or an event line before any header.
pub fn parse_post_mortems(text: &str) -> Result<Vec<PostMortem>, String> {
    let mut out: Vec<PostMortem> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            TraceLine::Provenance(record) => out.push(PostMortem {
                record,
                slice: Vec::new(),
            }),
            TraceLine::Event(ev) => match out.last_mut() {
                Some(pm) => pm.slice.push(ev),
                None => {
                    return Err(format!(
                        "line {}: trace event before provenance header",
                        i + 1
                    ))
                }
            },
        }
    }
    Ok(out)
}

/// Write trace events as JSON-lines via temp-file + atomic rename.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_trace_jsonl(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    crate::reporter::write_lines_atomic(path, events.iter().map(TraceEvent::to_json_line))
}

/// Write post-mortems as JSON-lines via temp-file + atomic rename.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_post_mortems_jsonl(path: &Path, pms: &[PostMortem]) -> std::io::Result<()> {
    crate::reporter::write_lines_atomic(path, post_mortems_to_lines(pms).into_iter())
}

/// Joins a drained ring with per-window quality outcomes into
/// [`ProvenanceRecord`]s and [`PostMortem`]s.
pub struct ProvenanceBuilder {
    events: Vec<TraceEvent>,
}

impl ProvenanceBuilder {
    /// Build over a drained ring (events are sorted by seq).
    pub fn new(mut events: Vec<TraceEvent>) -> ProvenanceBuilder {
        events.sort_by_key(|e| e.seq);
        ProvenanceBuilder { events }
    }

    /// The events, in seq order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Assemble the provenance of window `[start, end)` for `key` given
    /// the quality the run achieved for it. `required` marks the record
    /// violated when achieved falls short of it.
    pub fn record_for(
        &self,
        start: u64,
        end: u64,
        key: &str,
        achieved: f64,
        required: Option<f64>,
    ) -> ProvenanceRecord {
        let mut finalize_seq = None;
        let mut contributing = 0;
        let mut lateness: Vec<u64> = Vec::new();
        let mut dropped = 0u64;
        for ev in &self.events {
            match &ev.kind {
                TraceKind::WindowFinalize {
                    start: s,
                    end: e,
                    key: k,
                    count,
                } if *s == start && *e == end && k == key && finalize_seq.is_none() => {
                    finalize_seq = Some(ev.seq);
                    contributing = *count;
                }
                TraceKind::LateArrival { lateness: l, .. } if ev.at >= start && ev.at < end => {
                    lateness.push(*l);
                }
                TraceKind::LateDrop { windows, .. } if windows.contains(&(start, end)) => {
                    dropped += 1;
                }
                _ => {}
            }
        }
        lateness.sort_unstable();
        // The K decision "in force" at the finalize is causal, not
        // positional: staged execution records every WindowFinalize after
        // the whole strategy pass, so cutting at the finalize's ring
        // position would always select the run's *final* K. The decision
        // that actually governed this window is the last K change before
        // the buffer's watermark first passed the window end — the emit
        // that made the finalize inevitable. Fall back to the finalize
        // position when no such emit is on record (evicted from the ring,
        // or a source that does not trace buffer emits).
        let k_cutoff = self
            .events
            .iter()
            .find(|ev| {
                matches!(&ev.kind, TraceKind::BufferEmit { watermark, .. } if *watermark >= end)
            })
            .map(|ev| ev.seq)
            .or(finalize_seq);
        let (mut k_at, mut k_seq, mut k_reason) = (None, None, None);
        for ev in &self.events {
            if let TraceKind::KChange { new_k, reason, .. } = &ev.kind {
                if k_cutoff.is_none_or(|f| ev.seq < f) {
                    k_at = Some(*new_k);
                    k_seq = Some(ev.seq);
                    k_reason = Some(*reason);
                }
            }
        }
        ProvenanceRecord {
            start,
            end,
            key: key.to_string(),
            contributing,
            late_arrivals: lateness.len() as u64,
            dropped,
            lateness_p50: lateness.get(lateness.len() / 2).copied().unwrap_or(0),
            lateness_max: lateness.last().copied().unwrap_or(0),
            k_at_finalize: k_at,
            k_decision_seq: k_seq,
            k_decision_reason: k_reason,
            achieved_completeness: achieved,
            required_completeness: required,
            violated: required.is_some_and(|r| achieved + 1e-12 < r),
            finalize_seq,
        }
    }

    /// Materialize the causal slice for a record: the window's late
    /// arrivals and drops, the K decisions during its lifetime (including
    /// the one in force at finalize), and the finalize event itself.
    pub fn post_mortem(&self, record: &ProvenanceRecord) -> PostMortem {
        let fin = record.finalize_seq;
        let slice = self
            .events
            .iter()
            .filter(|ev| match &ev.kind {
                TraceKind::LateArrival { .. } => ev.at >= record.start && ev.at < record.end,
                TraceKind::LateDrop { windows, .. } => {
                    windows.contains(&(record.start, record.end))
                }
                TraceKind::KChange { .. } => {
                    fin.is_none_or(|f| ev.seq <= f)
                        && (ev.at >= record.start || Some(ev.seq) == record.k_decision_seq)
                }
                TraceKind::WindowFinalize {
                    start, end, key, ..
                } => *start == record.start && *end == record.end && *key == record.key,
                _ => false,
            })
            .cloned()
            .collect();
        PostMortem {
            record: record.clone(),
            slice,
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON parsing for the exact subset the emitters above produce:
// one object per line, string/number/bool values, plus `[[u64,u64],...]`
// arrays. No JSON dependency exists in this workspace.

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    /// Raw number text; converted to u64/f64 on access so u64::MAX
    /// round-trips without f64 precision loss.
    Num(String),
    Bool(bool),
    Pairs(Vec<(u64, u64)>),
}

pub(crate) struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    pub(crate) fn parse(line: &str) -> Result<Fields, String> {
        let mut s = Scanner {
            b: line.as_bytes(),
            i: 0,
        };
        s.skip_ws();
        s.expect(b'{')?;
        let mut fields = Vec::new();
        s.skip_ws();
        if s.peek() == Some(b'}') {
            s.i += 1;
        } else {
            loop {
                s.skip_ws();
                let key = s.parse_string()?;
                s.skip_ws();
                s.expect(b':')?;
                s.skip_ws();
                let val = match s.peek() {
                    Some(b'"') => JsonVal::Str(s.parse_string()?),
                    Some(b'[') => JsonVal::Pairs(s.parse_pairs()?),
                    Some(b't') => {
                        s.expect_literal("true")?;
                        JsonVal::Bool(true)
                    }
                    Some(b'f') => {
                        s.expect_literal("false")?;
                        JsonVal::Bool(false)
                    }
                    _ => JsonVal::Num(s.parse_number_raw()?),
                };
                fields.push((key, val));
                s.skip_ws();
                match s.bump() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        s.skip_ws();
        if s.i != s.b.len() {
            return Err("trailing characters after object".into());
        }
        Ok(Fields(fields))
    }

    fn get(&self, key: &str) -> Option<&JsonVal> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub(crate) fn u64(&self, key: &str) -> Result<u64, String> {
        self.opt_u64(key)?
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    pub(crate) fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(JsonVal::Num(raw)) => raw
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("field {key:?} is not a u64: {raw:?}")),
            Some(other) => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.opt_f64(key)?
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(JsonVal::Num(raw)) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("field {key:?} is not an f64: {raw:?}")),
            Some(other) => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    pub(crate) fn str(&self, key: &str) -> Result<String, String> {
        self.opt_str(key)
            .ok_or_else(|| format!("missing string field {key:?}"))
    }

    fn opt_str(&self, key: &str) -> Option<String> {
        match self.get(key) {
            Some(JsonVal::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonVal::Bool(b)) => Ok(*b),
            other => Err(format!("field {key:?} is not a bool: {other:?}")),
        }
    }

    fn pairs(&self, key: &str) -> Result<Vec<(u64, u64)>, String> {
        match self.get(key) {
            Some(JsonVal::Pairs(p)) => Ok(p.clone()),
            other => Err(format!("field {key:?} is not a pair array: {other:?}")),
        }
    }
}

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", c as char)),
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal {lit:?}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.i + 4 > self.b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        self.i += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: copy the full sequence through.
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.i - 1 + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[self.i - 1..end])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn parse_number_raw(&mut self) -> Result<String, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        Ok(std::str::from_utf8(&self.b[start..self.i])
            .expect("ascii number")
            .to_string())
    }

    fn parse_pairs(&mut self) -> Result<Vec<(u64, u64)>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            self.expect(b'[')?;
            let a: u64 = self
                .parse_number_raw()?
                .parse()
                .map_err(|_| "pair element is not a u64".to_string())?;
            self.expect(b',')?;
            let b: u64 = self
                .parse_number_raw()?
                .parse()
                .map_err(|_| "pair element is not a u64".to_string())?;
            self.expect(b']')?;
            out.push((a, b));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(out),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }
}

/// JSON-escape and quote a string (local copy; the exporter's helper is
/// private to keep module boundaries clean). Shared with the span layer's
/// Chrome trace export.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_kinds() -> Vec<TraceKind> {
        vec![
            TraceKind::LateArrival {
                lateness: 42,
                watermark: 190,
            },
            TraceKind::BufferEmit {
                released: 7,
                watermark: u64::MAX,
            },
            TraceKind::KChange {
                old_k: 0,
                new_k: 185,
                reason: KChangeReason::Ratchet,
            },
            TraceKind::WindowFinalize {
                start: 100,
                end: 200,
                key: "a\"b\\c".into(),
                count: 10,
            },
            TraceKind::LateDrop {
                event_seq: 7,
                windows: vec![(0, 100), (50, 150)],
            },
            TraceKind::LateDrop {
                event_seq: 8,
                windows: vec![],
            },
            TraceKind::SendStall { depth: 64 },
            TraceKind::MergeProgress {
                elements: 1234,
                fallback: true,
            },
        ]
    }

    #[test]
    fn trace_event_jsonl_round_trips() {
        for (i, kind) in sample_kinds().into_iter().enumerate() {
            let ev = TraceEvent {
                seq: i as u64,
                at: 1000 + i as u64,
                shard: if i % 2 == 0 { 0 } else { MERGE_SHARD },
                kind,
            };
            let line = ev.to_json_line();
            assert!(!line.contains('\n'));
            let back = TraceEvent::parse_json_line(&line)
                .unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse_json_line("").is_err());
        assert!(TraceEvent::parse_json_line("{}").is_err());
        assert!(TraceEvent::parse_json_line("{\"seq\":1}").is_err());
        assert!(TraceEvent::parse_json_line(
            "{\"seq\":1,\"at\":2,\"shard\":0,\"kind\":\"no_such_kind\"}"
        )
        .is_err());
        assert!(TraceEvent::parse_json_line(
            "{\"seq\":1,\"at\":2,\"shard\":0,\"kind\":\"send_stall\",\"depth\":3} x"
        )
        .is_err());
    }

    #[test]
    fn recorder_assigns_monotone_seq_and_bounds_memory() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i, 0, TraceKind::SendStall { depth: i });
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "ring keeps the newest events");
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(1, 0, TraceKind::SendStall { depth: 1 });
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.capacity(), 0);
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(16);
        let clone = rec.clone();
        clone.record(5, 1, TraceKind::SendStall { depth: 2 });
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.events()[0].shard, 1);
    }

    #[test]
    fn seq_order_is_global_across_threads() {
        let rec = FlightRecorder::new(4096);
        let mut handles = Vec::new();
        for shard in 0..4u32 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    rec.record(i, shard, TraceKind::SendStall { depth: i });
                }
            }));
        }
        for h in handles {
            h.join().expect("recorder thread");
        }
        let events = rec.events();
        assert_eq!(events.len(), 400);
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "ring order must equal seq order"
        );
    }

    fn violation_ring() -> ProvenanceBuilder {
        // A window [100, 200) that finalized with 10 tuples under K=95 (set
        // by a ratchet), then missed one tuple at ts=150 (lateness 145).
        let rec = FlightRecorder::new(64);
        rec.record(
            0,
            0,
            TraceKind::KChange {
                old_k: 0,
                new_k: 0,
                reason: KChangeReason::Initial,
            },
        );
        rec.record(
            95,
            0,
            TraceKind::KChange {
                old_k: 0,
                new_k: 95,
                reason: KChangeReason::Ratchet,
            },
        );
        rec.record(
            200,
            0,
            TraceKind::WindowFinalize {
                start: 100,
                end: 200,
                key: "null".into(),
                count: 10,
            },
        );
        rec.record(
            150,
            0,
            TraceKind::LateArrival {
                lateness: 145,
                watermark: 295,
            },
        );
        rec.record(
            150,
            0,
            TraceKind::LateDrop {
                event_seq: 21,
                windows: vec![(100, 200)],
            },
        );
        // Noise from a different window.
        rec.record(
            250,
            0,
            TraceKind::LateArrival {
                lateness: 3,
                watermark: 295,
            },
        );
        ProvenanceBuilder::new(rec.events())
    }

    #[test]
    fn provenance_joins_ring_with_quality() {
        let b = violation_ring();
        let rec = b.record_for(100, 200, "null", 10.0 / 11.0, Some(0.95));
        assert_eq!(rec.contributing, 10);
        assert_eq!(rec.late_arrivals, 1);
        assert_eq!(rec.dropped, 1);
        assert_eq!(rec.lateness_max, 145);
        assert_eq!(rec.lateness_p50, 145);
        assert_eq!(rec.k_at_finalize, Some(95));
        assert_eq!(rec.k_decision_reason, Some(KChangeReason::Ratchet));
        assert!(rec.violated);
        assert!(rec.finalize_seq.is_some());

        // A met target is not a violation.
        let ok = b.record_for(100, 200, "null", 10.0 / 11.0, Some(0.9));
        assert!(!ok.violated);
        // No target → never violated.
        let untargeted = b.record_for(100, 200, "null", 0.5, None);
        assert!(!untargeted.violated);
    }

    #[test]
    fn post_mortem_slices_the_causal_events() {
        let b = violation_ring();
        let rec = b.record_for(100, 200, "null", 10.0 / 11.0, Some(0.95));
        let pm = b.post_mortem(&rec);
        // Slice: the in-force K decision (ratchet), the finalize, the late
        // arrival at ts=150, and its drop — but not the initial K=0 (not in
        // force at finalize) nor the ts=250 noise arrival.
        assert_eq!(pm.slice.len(), 4);
        assert!(pm
            .slice
            .iter()
            .any(|e| matches!(&e.kind, TraceKind::LateArrival { .. } if e.at == 150)));
        assert!(pm.slice.iter().any(|e| matches!(
            &e.kind,
            TraceKind::KChange {
                reason: KChangeReason::Ratchet,
                ..
            }
        )));
        assert!(pm.slice.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn post_mortems_round_trip_through_jsonl() {
        let b = violation_ring();
        let rec = b.record_for(100, 200, "null", 10.0 / 11.0, Some(0.95));
        let pms = vec![b.post_mortem(&rec)];
        let lines = post_mortems_to_lines(&pms);
        let text = lines.join("\n");
        let back = parse_post_mortems(&text).expect("parse own output");
        assert_eq!(back, pms);
    }

    #[test]
    fn provenance_record_round_trips_optional_fields() {
        let full = ProvenanceRecord {
            start: 0,
            end: 100,
            key: "Int(3)".into(),
            contributing: 9,
            late_arrivals: 2,
            dropped: 1,
            lateness_p50: 10,
            lateness_max: 40,
            k_at_finalize: Some(95),
            k_decision_seq: Some(1),
            k_decision_reason: Some(KChangeReason::Adapt),
            achieved_completeness: 0.9,
            required_completeness: Some(0.97),
            violated: true,
            finalize_seq: Some(2),
        };
        let sparse = ProvenanceRecord {
            k_at_finalize: None,
            k_decision_seq: None,
            k_decision_reason: None,
            required_completeness: None,
            finalize_seq: None,
            violated: false,
            ..full.clone()
        };
        for rec in [full, sparse] {
            let line = rec.to_json_line();
            let back = ProvenanceRecord::parse_json_line(&line)
                .unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn unemitted_window_has_no_finalize_and_zero_contribution() {
        let rec = FlightRecorder::new(8);
        rec.record(
            5,
            0,
            TraceKind::LateDrop {
                event_seq: 1,
                windows: vec![(0, 100)],
            },
        );
        let b = ProvenanceBuilder::new(rec.events());
        let r = b.record_for(0, 100, "null", 0.0, Some(0.9));
        assert_eq!(r.finalize_seq, None);
        assert_eq!(r.contributing, 0);
        assert_eq!(r.dropped, 1);
        assert!(r.violated);
    }
}
