//! Pipeline span tracing with end-to-end latency attribution.
//!
//! The [`crate::Registry`] counts things and the
//! [`crate::trace::FlightRecorder`] records that incidents happened; this
//! module records *how long pipeline stages took and how they nest*. A
//! [`Span`] is one closed interval of a clock — begin and end stamps, the
//! [`Stage`] it covers, the shard that produced it, an optional owning
//! query, and an optional parent span for causal nesting. Spans accumulate
//! in a bounded ring ([`SpanRecorder`]) exactly like the flight recorder:
//! clones share the ring, sequence numbers are assigned under the ring
//! lock (ring order *is* seq order), and a
//! [`SpanRecorder::disabled`] recorder makes every hook a branch on a
//! `None` the optimiser folds away — instrumentation stays in place
//! unconditionally and costs nothing when nobody is watching (the bound is
//! verified by `parallel-bench`).
//!
//! ## Clock domains
//!
//! Deterministic pipeline code (strategies, buffers, the session, the
//! parallel executor) must not read wall clocks — the `no-wall-clock` lint
//! enforces it — so those spans are stamped with *logical* time: event-time
//! units of the stream itself (an event's timestamp, the watermark that
//! released it). The serve layer, which legitimately deals in real time,
//! records a second, separate ring in wall microseconds. A recorder is
//! pinned to one [`ClockDomain`] at construction and every span in a ring
//! shares it, so exports can label the time axis honestly instead of
//! mixing incomparable units.
//!
//! ## Attribution
//!
//! [`SpanRecorder::instrument`] attaches one `quill.span.<stage>` registry
//! histogram per stage; every recorded span also records its duration
//! there, *before* ring eviction, so the per-stage latency attribution on
//! `/metrics` covers the whole run even when the ring has wrapped.
//! [`attribute`] computes the same per-stage totals from a drained ring.
//!
//! ## Export
//!
//! Spans serialize to JSON-lines ([`Span::to_json_line`] /
//! [`Span::parse_json_line`], exact round-trip) and to the Chrome trace
//! event format ([`to_chrome_trace`]) that Perfetto and `chrome://tracing`
//! load directly; [`parse_chrome_trace`] parses that JSON back
//! structurally so exports can be validated without an external viewer.

use crate::trace::Fields;
use crate::{Histogram, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity for an enabled span recorder.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// `query` value of a span that belongs to no particular query.
pub const NO_QUERY: u64 = u64::MAX;

/// `parent` value of a root span (span ids start at 1).
pub const NO_PARENT: u64 = 0;

/// The pipeline stage a span covers. Each variant is one segment of the
/// path an event takes from the wire to a delivered window result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Wire bytes to parsed events on one ingest connection (serve layer,
    /// wall time).
    IngestDecode,
    /// Handing events to the next component: the serve ingest queue
    /// (wall time, measures backpressure blocking) or the parallel
    /// executor's keyed router (logical time).
    Route,
    /// An event's residency in the disorder-control slack buffer: from its
    /// own timestamp to the watermark that released it — exactly the
    /// buffer-induced event-time latency the paper trades against quality.
    BufferResidency,
    /// An event's residency in a shard-local re-ordering stage
    /// ([`ShardStage`](../quill_engine) wrapping a shard's window
    /// operator).
    ShardStage,
    /// A window's finalization lag: from the window end to the watermark
    /// that closed it.
    WindowFinalize,
    /// The cross-shard result merge.
    Merge,
    /// Result delivery: from the window end to the clock at which the
    /// result reached the consumer (run output, session queue poll).
    Deliver,
    /// One ingest connection's lifetime (serve layer, wall time).
    Connection,
    /// One query's registered lifetime (serve layer, wall time).
    Query,
}

impl Stage {
    /// Every stage, in serialization order.
    pub const ALL: [Stage; 9] = [
        Stage::IngestDecode,
        Stage::Route,
        Stage::BufferResidency,
        Stage::ShardStage,
        Stage::WindowFinalize,
        Stage::Merge,
        Stage::Deliver,
        Stage::Connection,
        Stage::Query,
    ];

    /// Stable serialization token (also the `quill.span.<stage>` histogram
    /// suffix and the Chrome trace event name).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::IngestDecode => "ingest_decode",
            Stage::Route => "route",
            Stage::BufferResidency => "buffer_residency",
            Stage::ShardStage => "shard_stage",
            Stage::WindowFinalize => "window_finalize",
            Stage::Merge => "merge",
            Stage::Deliver => "deliver",
            Stage::Connection => "connection",
            Stage::Query => "query",
        }
    }

    /// Parse a serialization token.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// Dense index into per-stage tables.
    fn index(self) -> usize {
        match self {
            Stage::IngestDecode => 0,
            Stage::Route => 1,
            Stage::BufferResidency => 2,
            Stage::ShardStage => 3,
            Stage::WindowFinalize => 4,
            Stage::Merge => 5,
            Stage::Deliver => 6,
            Stage::Connection => 7,
            Stage::Query => 8,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which clock a recorder's begin/end stamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockDomain {
    /// Event-time units of the stream itself (deterministic code).
    #[default]
    Logical,
    /// Microseconds of real time since the recorder's owner started
    /// (serve layer).
    WallMicros,
}

impl ClockDomain {
    /// Stable serialization token.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockDomain::Logical => "logical",
            ClockDomain::WallMicros => "wall_micros",
        }
    }

    /// Parse a serialization token.
    pub fn parse(s: &str) -> Option<ClockDomain> {
        match s {
            "logical" => Some(ClockDomain::Logical),
            "wall_micros" => Some(ClockDomain::WallMicros),
            _ => None,
        }
    }
}

/// One closed stage interval. `begin <= end` is not enforced — durations
/// saturate at 0 instead, so a clock oddity can never panic the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Monotone sequence number, assigned under the ring lock.
    pub seq: u64,
    /// Span id, unique within a recorder (ids start at 1).
    pub id: u64,
    /// Parent span id, [`NO_PARENT`] for roots.
    pub parent: u64,
    /// The pipeline stage covered.
    pub stage: Stage,
    /// Interval start, in the recorder's clock domain.
    pub begin: u64,
    /// Interval end, in the recorder's clock domain.
    pub end: u64,
    /// Shard that produced the span (0 for pre-fan-out components,
    /// [`crate::trace::MERGE_SHARD`] for the merge).
    pub shard: u32,
    /// Owning query id, [`NO_QUERY`] when not query-scoped.
    pub query: u64,
}

impl Span {
    /// The interval length (0 when `end < begin`).
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// Render as one JSON object on a single line. `query` is omitted for
    /// [`NO_QUERY`] spans.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"id\":{},\"parent\":{},\"stage\":\"{}\",\"begin\":{},\"end\":{},\"shard\":{}",
            self.seq,
            self.id,
            self.parent,
            self.stage.as_str(),
            self.begin,
            self.end,
            self.shard
        );
        if self.query != NO_QUERY {
            let _ = write!(out, ",\"query\":{}", self.query);
        }
        out.push('}');
        out
    }

    /// Parse one line produced by [`Span::to_json_line`].
    ///
    /// # Errors
    /// A message naming the malformed or missing field.
    pub fn parse_json_line(line: &str) -> Result<Span, String> {
        let fields = Fields::parse(line)?;
        let stage_tok = fields.str("stage")?;
        let stage =
            Stage::parse(&stage_tok).ok_or_else(|| format!("unknown span stage {stage_tok:?}"))?;
        Ok(Span {
            seq: fields.u64("seq")?,
            id: fields.u64("id")?,
            parent: fields.u64("parent")?,
            stage,
            begin: fields.u64("begin")?,
            end: fields.u64("end")?,
            shard: fields.u64("shard")? as u32,
            query: fields.opt_u64("query")?.unwrap_or(NO_QUERY),
        })
    }
}

/// The bounded ring behind an enabled recorder.
#[derive(Debug, Default)]
struct SpanRing {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Span>,
}

#[derive(Debug)]
struct SpanInner {
    capacity: usize,
    domain: ClockDomain,
    ring: Mutex<SpanRing>,
    /// Ids are allocated outside the ring lock, so concurrent begin/record
    /// pairs never serialize on the ring just to name themselves.
    next_id: AtomicU64,
    /// Per-stage attribution histograms (no-ops until
    /// [`SpanRecorder::instrument`]), indexed by [`Stage::index`].
    stage_hists: Mutex<Vec<Histogram>>,
}

/// A lock-cheap, bounded recorder of pipeline [`Span`]s. Clone it freely —
/// clones share the ring. [`SpanRecorder::disabled`] (also `Default`) is
/// the zero-cost variant: every `record_*` call is a branch on `None`.
///
/// When the ring is full the oldest span is overwritten and
/// [`SpanRecorder::dropped`] counts it; attribution histograms are updated
/// before eviction, so `/metrics` latency attribution covers the whole run
/// regardless of ring capacity.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder(Option<Arc<SpanInner>>);

impl SpanRecorder {
    /// An enabled logical-clock recorder holding at most `capacity` spans
    /// (min 1).
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder::with_domain(capacity, ClockDomain::Logical)
    }

    /// An enabled recorder in the given clock domain.
    pub fn with_domain(capacity: usize, domain: ClockDomain) -> SpanRecorder {
        SpanRecorder(Some(Arc::new(SpanInner {
            capacity: capacity.max(1),
            domain,
            ring: Mutex::new(SpanRing::default()),
            next_id: AtomicU64::new(1),
            stage_hists: Mutex::new(vec![Histogram::noop(); Stage::ALL.len()]),
        })))
    }

    /// An enabled wall-microsecond recorder (serve layer).
    pub fn wall(capacity: usize) -> SpanRecorder {
        SpanRecorder::with_domain(capacity, ClockDomain::WallMicros)
    }

    /// An enabled logical-clock recorder with [`DEFAULT_SPAN_CAPACITY`].
    pub fn with_default_capacity() -> SpanRecorder {
        SpanRecorder::new(DEFAULT_SPAN_CAPACITY)
    }

    /// A disabled recorder: same API, every call a no-op.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder(None)
    }

    /// Whether `record_*` calls actually record.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The recorder's clock domain ([`ClockDomain::Logical`] when
    /// disabled).
    pub fn domain(&self) -> ClockDomain {
        self.0
            .as_ref()
            .map_or(ClockDomain::Logical, |inner| inner.domain)
    }

    /// Attach per-stage `quill.span.<stage>` histograms from `registry`;
    /// subsequent spans record their durations there (latency attribution
    /// on `/metrics`). A disabled registry detaches them again.
    pub fn instrument(&self, registry: &Registry) {
        if let Some(inner) = &self.0 {
            let mut hists = inner.stage_hists.lock();
            for stage in Stage::ALL {
                hists[stage.index()] = registry.histogram(&format!("quill.span.{stage}"));
            }
        }
    }

    /// Record a root span owned by no query. Returns the span id (0 when
    /// disabled), usable as a `parent` for children.
    #[inline]
    pub fn record(&self, stage: Stage, begin: u64, end: u64, shard: u32) -> u64 {
        self.record_child(NO_PARENT, stage, begin, end, shard, NO_QUERY)
    }

    /// Record a root span owned by `query`.
    #[inline]
    pub fn record_for_query(
        &self,
        stage: Stage,
        begin: u64,
        end: u64,
        shard: u32,
        query: u64,
    ) -> u64 {
        self.record_child(NO_PARENT, stage, begin, end, shard, query)
    }

    /// Record a span below `parent` ([`NO_PARENT`] for a root). The
    /// sequence number is assigned under the ring lock, so ring order
    /// equals seq order even across threads; the duration is folded into
    /// the stage's attribution histogram before any ring eviction.
    pub fn record_child(
        &self,
        parent: u64,
        stage: Stage,
        begin: u64,
        end: u64,
        shard: u32,
        query: u64,
    ) -> u64 {
        let Some(inner) = &self.0 else {
            return 0;
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let hist = inner.stage_hists.lock()[stage.index()].clone();
        hist.record(end.saturating_sub(begin));
        let mut ring = inner.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() >= inner.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(Span {
            seq,
            id,
            parent,
            stage,
            begin,
            end,
            shard,
            query,
        });
        id
    }

    /// Spans currently held, oldest first (seq order). Empty when
    /// disabled.
    pub fn spans(&self) -> Vec<Span> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner.ring.lock().buf.iter().cloned().collect()
        })
    }

    /// Drain the ring: every held span, oldest first, leaving it empty.
    pub fn take(&self) -> Vec<Span> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.ring.lock().buf.drain(..).collect())
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |inner| inner.ring.lock().dropped)
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.ring.lock().buf.len())
    }

    /// Whether no spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.0.as_ref().map_or(0, |inner| inner.capacity)
    }
}

/// Per-stage latency attribution computed from a drained ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageAttribution {
    /// The stage.
    pub stage: Stage,
    /// Spans recorded for it.
    pub count: u64,
    /// Sum of their durations.
    pub total: u64,
    /// Largest single duration.
    pub max: u64,
}

/// Fold `spans` into one [`StageAttribution`] per stage present, in
/// [`Stage::ALL`] order. Stages with no spans are omitted.
pub fn attribute(spans: &[Span]) -> Vec<StageAttribution> {
    let mut table: Vec<StageAttribution> = Stage::ALL
        .into_iter()
        .map(|stage| StageAttribution {
            stage,
            count: 0,
            total: 0,
            max: 0,
        })
        .collect();
    for s in spans {
        let slot = &mut table[s.stage.index()];
        slot.count += 1;
        slot.total += s.duration();
        slot.max = slot.max.max(s.duration());
    }
    table.retain(|a| a.count > 0);
    table
}

/// Write spans as JSON-lines via temp-file + atomic rename.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_spans_jsonl(path: &Path, spans: &[Span]) -> std::io::Result<()> {
    crate::reporter::write_lines_atomic(path, spans.iter().map(Span::to_json_line))
}

// ---------------------------------------------------------------------------
// Chrome trace event format (Perfetto / chrome://tracing).

/// Render labelled span groups as one Chrome trace JSON object. Each part
/// becomes its own process (pid = position + 1) named by its label and
/// clock domain via `process_name` metadata events, so mixed-domain
/// exports (serve wall spans next to session logical spans) stay visually
/// separated instead of sharing an axis dishonestly. Span `ts`/`dur` map
/// to the trace's microsecond fields unscaled; shards become thread ids.
pub fn to_chrome_trace_parts(parts: &[(&str, ClockDomain, Vec<Span>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (i, (label, domain, spans)) in parts.iter().enumerate() {
        let pid = i as u64 + 1;
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            crate::trace::json_string(&format!("{label} ({})", domain.as_str()))
        );
        for s in spans {
            let _ = write!(
                out,
                ",\n{{\"name\":\"{}\",\"cat\":\"quill\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{},\"args\":{{\"id\":{},\"parent\":{},\"seq\":{}",
                s.stage.as_str(),
                s.begin,
                s.duration(),
                s.shard,
                s.id,
                s.parent,
                s.seq
            );
            if s.query != NO_QUERY {
                let _ = write!(out, ",\"query\":{}", s.query);
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}");
    out
}

/// Render one span group as a Chrome trace JSON object (see
/// [`to_chrome_trace_parts`]).
pub fn to_chrome_trace(spans: &[Span], domain: ClockDomain) -> String {
    to_chrome_trace_parts(&[("quill pipeline", domain, spans.to_vec())])
}

/// One event parsed back out of a Chrome trace export. Only the fields the
/// structural round-trip cares about are retained.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (the stage token for `"X"` events).
    pub name: String,
    /// Phase: `"X"` for complete spans, `"M"` for metadata.
    pub ph: String,
    /// Start, microsecond field (absent on metadata events).
    pub ts: Option<u64>,
    /// Duration, microsecond field (absent on metadata events).
    pub dur: Option<u64>,
    /// Process id.
    pub pid: Option<u64>,
    /// Thread id.
    pub tid: Option<u64>,
}

/// A structurally parsed Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// The `displayTimeUnit` hint, when present.
    pub display_time_unit: Option<String>,
    /// Every event in the `traceEvents` array.
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// The complete (`"X"`) events — the actual spans on the timeline.
    pub fn complete_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.events.iter().filter(|e| e.ph == "X")
    }
}

/// Parse a Chrome trace JSON object (the object form with a `traceEvents`
/// array, as produced by [`to_chrome_trace`] and accepted by Perfetto).
/// The parser is a small but complete JSON reader, so hand-edited or
/// third-party traces of the same shape parse too.
///
/// # Errors
/// A message locating the structural problem.
pub fn parse_chrome_trace(text: &str) -> Result<ChromeTrace, String> {
    let value = JsonParser::parse(text)?;
    let Jv::Obj(fields) = &value else {
        return Err("top level is not a JSON object".into());
    };
    let display_time_unit = match obj_get(fields, "displayTimeUnit") {
        Some(Jv::Str(s)) => Some(s.clone()),
        Some(_) => return Err("displayTimeUnit is not a string".into()),
        None => None,
    };
    let Some(Jv::Arr(raw_events)) = obj_get(fields, "traceEvents") else {
        return Err("missing traceEvents array".into());
    };
    let mut events = Vec::with_capacity(raw_events.len());
    for (i, ev) in raw_events.iter().enumerate() {
        let Jv::Obj(f) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let name = match obj_get(f, "name") {
            Some(Jv::Str(s)) => s.clone(),
            _ => return Err(format!("traceEvents[{i}] has no string name")),
        };
        let ph = match obj_get(f, "ph") {
            Some(Jv::Str(s)) => s.clone(),
            _ => return Err(format!("traceEvents[{i}] has no string ph")),
        };
        let num = |key: &str| -> Result<Option<u64>, String> {
            match obj_get(f, key) {
                None => Ok(None),
                Some(Jv::Num(raw)) => raw
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|_| format!("traceEvents[{i}].{key} is not a u64: {raw:?}")),
                Some(_) => Err(format!("traceEvents[{i}].{key} is not a number")),
            }
        };
        events.push(ChromeEvent {
            name,
            ph,
            ts: num("ts")?,
            dur: num("dur")?,
            pid: num("pid")?,
            tid: num("tid")?,
        });
    }
    Ok(ChromeTrace {
        display_time_unit,
        events,
    })
}

fn obj_get<'a>(fields: &'a [(String, Jv)], key: &str) -> Option<&'a Jv> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A parsed JSON value; numbers keep their raw text so u64::MAX survives.
#[derive(Debug, Clone, PartialEq)]
enum Jv {
    Obj(Vec<(String, Jv)>),
    Arr(Vec<Jv>),
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

/// A minimal recursive-descent JSON parser: full value grammar (objects,
/// arrays, strings with escapes, numbers, booleans, null), no extensions.
/// The flat parser in `trace.rs` stays intentionally smaller; Chrome
/// traces nest (`args` objects inside array elements), so they need the
/// real thing.
struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Jv, String> {
        let mut p = JsonParser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing characters at byte {}", p.i));
        }
        Ok(v)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, got {got:?}",
                c as char, self.i
            )),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal {lit:?} at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Jv::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(Jv::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Jv::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(Jv::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Jv, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Jv::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Jv::Obj(fields)),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Jv, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Jv::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Jv::Arr(items)),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.i + 4 > self.b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        self.i += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    let len = match first {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.i - 1 + len).min(self.b.len());
                    let chunk = std::str::from_utf8(&self.b[self.i - 1..end])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        Ok(Jv::Num(
            std::str::from_utf8(&self.b[start..self.i])
                .map_err(|_| "non-utf8 number".to_string())?
                .to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MERGE_SHARD;

    fn sample_recorder() -> SpanRecorder {
        let rec = SpanRecorder::new(128);
        let root = rec.record(Stage::BufferResidency, 10, 60, 0);
        rec.record_child(root, Stage::WindowFinalize, 100, 160, 1, NO_QUERY);
        rec.record_for_query(Stage::Deliver, 100, 175, 0, 3);
        rec.record(Stage::Merge, 100, 200, MERGE_SHARD);
        rec
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        assert_eq!(rec.record(Stage::Route, 0, 5, 0), 0);
        assert_eq!(
            rec.record_child(7, Stage::Deliver, 0, 5, 0, 1),
            0,
            "disabled recorders hand out id 0"
        );
        assert!(rec.spans().is_empty());
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.capacity(), 0);
        assert_eq!(rec.domain(), ClockDomain::Logical);
    }

    #[test]
    fn spans_carry_parent_links_and_seq_order() {
        let rec = sample_recorder();
        let spans = rec.spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[0].parent, NO_PARENT);
        assert_eq!(spans[2].query, 3);
        assert_eq!(spans[3].shard, MERGE_SHARD);
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let rec = SpanRecorder::new(2);
        for i in 0..5u64 {
            rec.record(Stage::Route, i, i + 1, 0);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let spans = rec.spans();
        assert_eq!(spans[0].begin, 3, "oldest spans evicted first");
    }

    #[test]
    fn take_drains_the_ring() {
        let rec = sample_recorder();
        assert_eq!(rec.take().len(), 4);
        assert!(rec.is_empty());
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = SpanRecorder::new(16);
        let clone = rec.clone();
        clone.record(Stage::Route, 0, 5, 0);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn instrument_attributes_durations_per_stage() {
        let reg = Registry::new();
        let rec = SpanRecorder::new(2); // smaller than the span count
        rec.instrument(&reg);
        for i in 0..10u64 {
            rec.record(Stage::BufferResidency, 0, 7, 0);
            rec.record(Stage::Deliver, 0, i, 0);
        }
        let snap = reg.snapshot();
        let buf = snap.histograms["quill.span.buffer_residency"];
        assert_eq!(buf.count, 10, "histograms must survive ring eviction");
        assert_eq!(buf.mean, 7.0);
        assert_eq!(snap.histograms["quill.span.deliver"].count, 10);
    }

    #[test]
    fn json_lines_round_trip_exactly() {
        let rec = sample_recorder();
        for span in rec.spans() {
            let line = span.to_json_line();
            let back = Span::parse_json_line(&line).expect("parse own line");
            assert_eq!(back, span, "line: {line}");
        }
    }

    #[test]
    fn json_line_omits_query_for_unowned_spans() {
        let rec = SpanRecorder::new(4);
        rec.record(Stage::Route, 0, 5, 0);
        let line = rec.spans()[0].to_json_line();
        assert!(!line.contains("query"), "{line}");
        assert_eq!(Span::parse_json_line(&line).unwrap().query, NO_QUERY);
    }

    #[test]
    fn parse_rejects_malformed_span_lines() {
        assert!(Span::parse_json_line("{}").is_err());
        assert!(Span::parse_json_line(
            "{\"seq\":0,\"id\":1,\"parent\":0,\"stage\":\"nope\",\"begin\":0,\"end\":1,\"shard\":0}"
        )
        .is_err());
        assert!(Span::parse_json_line("not json").is_err());
    }

    #[test]
    fn stage_tokens_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::parse("bogus"), None);
        for domain in [ClockDomain::Logical, ClockDomain::WallMicros] {
            assert_eq!(ClockDomain::parse(domain.as_str()), Some(domain));
        }
    }

    #[test]
    fn attribution_folds_durations_per_stage() {
        let rec = sample_recorder();
        let attr = attribute(&rec.spans());
        let get = |stage: Stage| attr.iter().find(|a| a.stage == stage).unwrap();
        assert_eq!(get(Stage::BufferResidency).total, 50);
        assert_eq!(get(Stage::Deliver).count, 1);
        assert_eq!(get(Stage::Merge).max, 100);
        assert!(attr.iter().all(|a| a.count > 0));
    }

    #[test]
    fn chrome_trace_round_trips_structurally() {
        let rec = sample_recorder();
        let spans = rec.spans();
        let text = to_chrome_trace(&spans, ClockDomain::Logical);
        let trace = parse_chrome_trace(&text).expect("parse own export");
        assert_eq!(trace.display_time_unit.as_deref(), Some("ms"));
        let complete: Vec<&ChromeEvent> = trace.complete_events().collect();
        assert_eq!(complete.len(), spans.len());
        for (ev, span) in complete.iter().zip(&spans) {
            assert_eq!(ev.name, span.stage.as_str());
            assert_eq!(ev.ts, Some(span.begin));
            assert_eq!(ev.dur, Some(span.duration()));
            assert_eq!(ev.tid, Some(span.shard as u64));
        }
        // One metadata event names the process with its clock domain.
        let meta: Vec<&ChromeEvent> = trace.events.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 1);
        assert_eq!(meta[0].name, "process_name");
    }

    #[test]
    fn chrome_trace_parts_separate_pids_per_domain() {
        let wall = SpanRecorder::wall(16);
        wall.record(Stage::Connection, 0, 1000, 0);
        let logical = SpanRecorder::new(16);
        logical.record(Stage::Deliver, 10, 20, 0);
        let text = to_chrome_trace_parts(&[
            ("serve", ClockDomain::WallMicros, wall.spans()),
            ("session", ClockDomain::Logical, logical.spans()),
        ]);
        let trace = parse_chrome_trace(&text).expect("parse own export");
        let pids: Vec<Option<u64>> = trace.complete_events().map(|e| e.pid).collect();
        assert_eq!(pids, vec![Some(1), Some(2)]);
        assert_eq!(trace.events.iter().filter(|e| e.ph == "M").count(), 2);
    }

    #[test]
    fn chrome_parser_rejects_structural_damage() {
        assert!(parse_chrome_trace("[]").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn chrome_parser_handles_foreign_traces() {
        // Hand-written trace with whitespace, nesting and unknown fields.
        let text = r#"{
            "displayTimeUnit": "ms",
            "otherData": {"version": "x"},
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 1, "dur": 2, "pid": 1, "tid": 7,
                 "args": {"deep": {"er": [1, 2, null, true]}}}
            ]
        }"#;
        let trace = parse_chrome_trace(text).expect("parse foreign trace");
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].tid, Some(7));
    }

    #[test]
    fn spans_jsonl_writes_and_parses_back() {
        let dir = std::env::temp_dir().join(format!("quill-span-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        let rec = sample_recorder();
        write_spans_jsonl(&path, &rec.spans()).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed: Vec<Span> = text
            .lines()
            .map(|l| Span::parse_json_line(l).expect("parse line"))
            .collect();
        assert_eq!(parsed, rec.spans());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
