//! Log-bucketed histogram for non-negative integer observations.
//!
//! HDR-style layout: values are grouped into power-of-two magnitude ranges,
//! each split into `2^precision_bits` linear sub-buckets, giving a bounded
//! *relative* quantile error of `2^-precision_bits` while using O(64 ·
//! 2^precision_bits) space regardless of the value range. Used for latency
//! and delay distributions where tails span many orders of magnitude.

use serde::{Deserialize, Serialize};

/// A log-bucketed histogram over `u64` observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    precision_bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LogHistogram {
    /// Create a histogram with the given sub-bucket precision (1..=12 bits;
    /// quantile relative error ≤ `2^-bits`). 7 bits (≤ 0.8 % error) is a good
    /// default.
    pub fn new(precision_bits: u32) -> LogHistogram {
        let bits = precision_bits.clamp(1, 12);
        // One magnitude range per possible leading-bit position plus the
        // initial linear range.
        let buckets = (64 - bits as usize + 1) * (1usize << bits);
        LogHistogram {
            precision_bits: bits,
            counts: vec![0; buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Default precision (7 bits, ≤ 0.8 % relative quantile error).
    pub fn with_default_precision() -> LogHistogram {
        LogHistogram::new(7)
    }

    fn index_of(&self, v: u64) -> usize {
        let bits = self.precision_bits;
        let sub = 1u64 << bits;
        if v < sub {
            return v as usize;
        }
        // Magnitude = position of the leading bit beyond the linear range.
        let mag = 63 - v.leading_zeros() as u64; // >= bits
        let shift = mag - bits as u64;
        let sub_idx = (v >> shift) & (sub - 1);
        ((mag - bits as u64 + 1) * sub + sub_idx) as usize
    }

    /// Lower edge of the bucket with the given index (inverse of
    /// `index_of` up to bucket granularity).
    fn bucket_low(&self, idx: usize) -> u64 {
        let bits = self.precision_bits as u64;
        let sub = 1u64 << bits;
        let idx = idx as u64;
        if idx < sub {
            return idx;
        }
        let range = idx / sub; // >= 1
        let sub_idx = idx % sub;
        let shift = range - 1;
        (sub + sub_idx) << shift
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = self.index_of(v).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate q-quantile (0..=1), with relative error bounded by the
    /// precision. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Clamp to the exact observed range for tight tails.
                return Some(self.bucket_low(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fraction of observations ≤ `v` (1.0 when empty, mirroring
    /// `ecdf_sorted`). Bucket-granular.
    pub fn cdf(&self, v: u64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let idx = self.index_of(v).min(self.counts.len() - 1);
        let acc: u64 = self.counts[..=idx].iter().sum();
        acc as f64 / self.total as f64
    }

    /// Merge another histogram (must have identical precision).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms of different precision"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Exponentially decay the histogram: halve every bucket count
    /// (rounding down; buckets reaching zero forget their values). Gives a
    /// fixed-memory estimator an effective horizon when called periodically
    /// — the recency mechanism of the histogram-based delay estimator.
    /// `min`/`max` are retained as lifetime bounds.
    pub fn halve(&mut self) {
        let mut total = 0u64;
        for c in &mut self.counts {
            *c /= 2;
            total += *c;
        }
        self.total = total;
        self.sum /= 2;
    }

    /// Reset all counts.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::with_default_precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(7);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(99));
        // All values fit in the linear range (< 128): quantiles are exact.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(1.0), Some(99));
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LogHistogram::new(7);
        // Log-uniform sample across 6 orders of magnitude.
        let mut v = 1u64;
        let mut all = Vec::new();
        while v < 1_000_000 {
            for k in 0..10 {
                let x = v + k * v / 10;
                h.record(x);
                all.push(x);
            }
            v *= 2;
        }
        all.sort();
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let exact = all[((q * (all.len() - 1) as f64) as usize).min(all.len() - 1)];
            let approx = h.quantile(q).unwrap();
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.02, "q={q}: approx={approx} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let mut h = LogHistogram::new(4);
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let mut last = 0.0;
        for x in [0u64, 1, 5, 10, 99, 100, 5000, 1_000_000] {
            let c = h.cdf(x);
            assert!(c >= last, "cdf regressed at {x}");
            last = c;
        }
        assert_eq!(h.cdf(1_000_000), 1.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::default();
        for v in [2u64, 4, 9] {
            h.record(v);
        }
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(7);
        let mut b = LogHistogram::new(7);
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mixed_precision() {
        let mut a = LogHistogram::new(7);
        let b = LogHistogram::new(8);
        a.merge(&b);
    }

    #[test]
    fn halve_decays_mass_and_preserves_shape() {
        let mut h = LogHistogram::new(7);
        for _ in 0..100 {
            h.record(10);
        }
        for _ in 0..100 {
            h.record(1000);
        }
        let q_before = h.quantile(0.5).unwrap();
        h.halve();
        assert_eq!(h.count(), 100);
        // Median unchanged (both modes halved equally).
        assert_eq!(h.quantile(0.5).unwrap(), q_before);
        // Mean approximately preserved.
        assert!((h.mean() - 505.0).abs() < 10.0);
        // Repeated halving forgets everything.
        for _ in 0..8 {
            h.halve();
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn halve_forgets_old_regime_under_new_mass() {
        let mut h = LogHistogram::new(7);
        for _ in 0..64 {
            h.record(10_000); // old regime: huge delays
        }
        for _ in 0..7 {
            h.halve(); // decay the old mass to zero
        }
        for _ in 0..50 {
            h.record(10); // new calm regime
        }
        assert_eq!(h.quantile(0.99), Some(10));
    }

    #[test]
    fn clear_resets() {
        let mut h = LogHistogram::default();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LogHistogram::new(7);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.cdf(10), 1.0);
    }
}
