//! # quill-telemetry
//!
//! Runtime observability for the quill stack: a cheap, shared metrics
//! registry with named instrument handles, point-in-time and delta
//! snapshots, and text exporters (Prometheus exposition format and
//! JSON-lines).
//!
//! ## Design
//!
//! * **One registry, many handles.** A [`Registry`] is a cheaply clonable
//!   handle to a shared instrument table. Components ask it for named
//!   instruments once at wiring time ([`Registry::counter`],
//!   [`Registry::gauge`], [`Registry::histogram`]) and then update them
//!   lock-free on the hot path (atomic add/store; histograms take a short
//!   mutex only when enabled).
//! * **Zero-cost when disabled.** [`Registry::disabled`] yields the same
//!   handle types backed by nothing: every update is a branch on a `None`
//!   that the optimiser folds away. Code is instrumented unconditionally
//!   and pays only when someone is watching (the bound is verified by
//!   `parallel-bench`).
//! * **Snapshots are plain data.** [`Registry::snapshot`] materialises the
//!   current instrument values into sorted maps; [`Snapshot::delta_since`]
//!   turns two cumulative snapshots into a per-interval view. The
//!   [`reporter::TelemetryReporter`] emits snapshots every N events and/or
//!   M milliseconds.
//! * **Naming scheme.** Dotted, lowercase paths by subsystem:
//!   `quill.buffer.*` (ordering buffer), `quill.controller.*` (AQ-K-slack
//!   control loop), `quill.estimator.*` (delay distribution),
//!   `quill.shard.<i>.*` (parallel executor shards), `quill.merge.*`
//!   (result merge), `quill.pipeline.stage.<i>.*` (pipeline stages),
//!   `quill.span.<stage>` (per-stage latency attribution from the
//!   [`span`] layer), and `quill.run.*` (whole-run accounting). Exporters
//!   sanitise names for their target format.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod histogram;
pub mod reporter;
pub mod span;
pub mod trace;

pub use histogram::LogHistogram;
pub use reporter::{ReporterConfig, TelemetryReporter};
pub use span::{ClockDomain, Span, SpanRecorder, Stage};
pub use trace::{FlightRecorder, TraceEvent, TraceKind};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle. Cloning shares the counter.
///
/// Handles from a disabled registry are no-ops: `inc`/`add` compile to a
/// branch on a `None`.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry hands out).
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle storing an `f64`. Cloning shares the
/// gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Set from an integer value.
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// A log-bucketed histogram handle (see [`LogHistogram`]). Cloning shares
/// the histogram. Recording takes a short mutex — only when enabled.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<LogHistogram>>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().record(v);
        }
    }

    /// Summarise the current contents (empty summary for a no-op handle).
    pub fn summary(&self) -> HistogramSummary {
        self.0.as_ref().map_or_else(HistogramSummary::default, |h| {
            HistogramSummary::of(&h.lock())
        })
    }
}

/// Point-in-time summary of a histogram's distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Exact mean (0 when empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarise a histogram.
    pub fn of(h: &LogHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            mean: h.mean(),
            p50: h.quantile(0.5).unwrap_or(0),
            p90: h.quantile(0.9).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
        }
    }
}

/// The shared instrument table behind an enabled registry.
#[derive(Debug)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LogHistogram>>>>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A shared metrics registry. Clone it freely — clones observe the same
/// instruments. [`Registry::disabled`] (also [`Registry::default`]) is the
/// zero-cost variant whose handles do nothing.
#[derive(Debug, Clone, Default)]
pub struct Registry(Option<Arc<Inner>>);

impl Registry {
    /// An enabled registry with an empty instrument table.
    pub fn new() -> Registry {
        Registry(Some(Arc::new(Inner::default())))
    }

    /// A disabled registry: same API, no-op handles, no allocations.
    pub fn disabled() -> Registry {
        Registry(None)
    }

    /// Whether instruments from this registry actually record.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Get or create the named counter. Repeated calls with one name share
    /// one underlying counter, across registry clones.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            None => Counter(None),
            Some(inner) => {
                let mut t = inner.counters.lock();
                Counter(Some(Arc::clone(t.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            None => Gauge(None),
            Some(inner) => {
                let mut t = inner.gauges.lock();
                Gauge(Some(Arc::clone(t.entry(name.to_string()).or_default())))
            }
        }
    }

    /// Get or create the named histogram (default precision).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.0 {
            None => Histogram(None),
            Some(inner) => {
                let mut t = inner.histograms.lock();
                Histogram(Some(Arc::clone(t.entry(name.to_string()).or_insert_with(
                    || Arc::new(Mutex::new(LogHistogram::default())),
                ))))
            }
        }
    }

    /// Materialise every instrument's current value. Disabled registries
    /// yield an empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.0 {
            for (name, c) in inner.counters.lock().iter() {
                snap.counters
                    .insert(name.clone(), c.load(Ordering::Relaxed));
            }
            for (name, g) in inner.gauges.lock().iter() {
                snap.gauges
                    .insert(name.clone(), f64::from_bits(g.load(Ordering::Relaxed)));
            }
            for (name, h) in inner.histograms.lock().iter() {
                snap.histograms
                    .insert(name.clone(), HistogramSummary::of(&h.lock()));
            }
        }
        snap
    }
}

/// A point-in-time (or, via [`Snapshot::delta_since`], per-interval) view
/// of every instrument in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Snapshot sequence number within a reporter's run (0 = first).
    pub seq: u64,
    /// Events observed by the reporter when this snapshot was taken.
    pub at_events: u64,
    /// Microseconds since the reporter started.
    pub wall_micros: u128,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Convenience: the named counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience: the named gauge's value, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Sum of all counters whose name starts with `prefix` and ends with
    /// `suffix` (either may be empty). Useful for per-shard families like
    /// `quill.shard.<i>.events`.
    pub fn counter_family_sum(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Sum of all gauges whose name starts with `prefix` and ends with
    /// `suffix` (either may be empty). The gauge counterpart of
    /// [`Snapshot::counter_family_sum`], for aggregating shard-labelled
    /// gauge families like `quill.shard.<i>.queue_depth` explicitly
    /// instead of letting shards overwrite a shared name.
    pub fn gauge_family_sum(&self, prefix: &str, suffix: &str) -> f64 {
        self.gauges
            .iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The per-interval view between `prev` (earlier) and `self` (later):
    /// counters and histogram counts are subtracted (saturating, so a
    /// restarted registry never underflows); gauges and histogram quantiles
    /// keep their current (point-in-time) values.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, v) in out.counters.iter_mut() {
            *v = v.saturating_sub(prev.counter(name));
        }
        for (name, h) in out.histograms.iter_mut() {
            if let Some(p) = prev.histograms.get(name) {
                h.count = h.count.saturating_sub(p.count);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        let a = reg.counter("quill.test.hits");
        let b = reg.counter("quill.test.hits");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("quill.test.hits"), 5);
    }

    #[test]
    fn clones_share_the_instrument_table() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("quill.x").add(7);
        assert_eq!(reg.snapshot().counter("quill.x"), 7);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("quill.x");
        let g = reg.gauge("quill.y");
        let h = reg.histogram("quill.z");
        c.add(10);
        g.set(3.5);
        h.record(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.summary().count, 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn gauges_store_last_value() {
        let reg = Registry::new();
        let g = reg.gauge("quill.k");
        g.set(10.0);
        g.set_u64(250);
        assert_eq!(reg.snapshot().gauge("quill.k"), Some(250.0));
    }

    #[test]
    fn histogram_summary_has_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("quill.lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = reg.snapshot().histograms["quill.lat"];
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 45 && s.p50 <= 55, "p50={}", s.p50);
        assert!(s.p99 >= 95, "p99={}", s.p99);
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("quill.n");
        let g = reg.gauge("quill.k");
        let h = reg.histogram("quill.lat");
        c.add(10);
        g.set(1.0);
        h.record(5);
        let first = reg.snapshot();
        c.add(7);
        g.set(2.0);
        h.record(6);
        h.record(7);
        let second = reg.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.counter("quill.n"), 7);
        assert_eq!(d.gauge("quill.k"), Some(2.0));
        assert_eq!(d.histograms["quill.lat"].count, 2);
    }

    #[test]
    fn gauge_family_sum_filters_by_affix() {
        let reg = Registry::new();
        reg.gauge("quill.shard.0.queue_depth").set(3.0);
        reg.gauge("quill.shard.1.queue_depth").set(4.5);
        reg.gauge("quill.shard.0.other").set(99.0);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge_family_sum("quill.shard.", ".queue_depth"), 7.5);
    }

    #[test]
    fn counter_family_sum_filters_by_affix() {
        let reg = Registry::new();
        reg.counter("quill.shard.0.events").add(3);
        reg.counter("quill.shard.1.events").add(4);
        reg.counter("quill.shard.0.batches").add(99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_family_sum("quill.shard.", ".events"), 7);
    }
}
