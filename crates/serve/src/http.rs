//! A deliberately small HTTP/1.1 control surface (the workspace vendors no
//! HTTP stack): request-per-connection, `Connection: close`, JSON bodies
//! rendered by [`crate::json`].
//!
//! | Endpoint                     | Meaning                                   |
//! |------------------------------|-------------------------------------------|
//! | `GET /healthz`               | liveness + strategy + uptime              |
//! | `GET /metrics`               | Prometheus text exposition                |
//! | `GET /trace`                 | pipeline spans as Chrome-trace JSON       |
//! |                              | (loadable in Perfetto / `chrome://tracing`)|
//! | `GET /stats`                 | session counters as JSON                  |
//! | `GET /queries`               | list registered queries                   |
//! | `POST /queries`              | register (body = query DSL), returns id   |
//! | `GET /queries/{id}`          | one query's info                          |
//! | `DELETE /queries/{id}`       | deregister, returns final stats           |
//! | `GET /queries/{id}/results`  | drain pending window results              |
//! | `POST /finish`               | graceful drain (ingest stops, session     |
//! |                              | finishes, HTTP stays up)                  |
//! | `POST /shutdown`             | drain then stop the whole server          |

use crate::json;
use crate::server::Shared;
use quill_core::prelude::QueryId;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Read one HTTP request (start line, headers, `Content-Length` body).
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Read until the header terminator.
    let header_end = loop {
        if let Some(p) = find_crlf2(&buf) {
            break p;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
        if buf.len() > 64 * 1024 {
            return None;
        }
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let mut lines = head.split("\r\n");
    let start = lines.next()?;
    let mut parts = start.split_ascii_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let content_len: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_len {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    body.truncate(content_len);
    let body = String::from_utf8_lossy(&body).into_owned();
    Some(Request { method, path, body })
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write one response and close.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let msg = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(msg.as_bytes());
    let _ = stream.flush();
}

fn ok_json(stream: &mut TcpStream, body: &str) {
    respond(stream, "200 OK", "application/json", body);
}

fn bad_request(stream: &mut TcpStream, msg: &str) {
    respond(
        stream,
        "400 Bad Request",
        "application/json",
        &json::error(msg),
    );
}

fn not_found(stream: &mut TcpStream) {
    respond(
        stream,
        "404 Not Found",
        "application/json",
        &json::error("no such endpoint"),
    );
}

/// Serve HTTP until an exit is requested. Requests are handled serially:
/// the control surface is low-traffic by design, and serial handling keeps
/// the session lock uncontended.
pub(crate) fn serve(shared: &Arc<Shared>, listener: &TcpListener) {
    // The single wall-clock read in this crate: uptime reported by
    // /healthz. It never influences stream-time decisions.
    // quill-lint: allow(no-wall-clock, reason = "operator-facing uptime in /healthz only")
    let started = std::time::Instant::now();
    while !shared.exit_requested() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if let Some(req) = read_request(&mut stream) {
                    dispatch(shared, &mut stream, &req, started);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Route one request.
// quill-lint: allow(wall-clock-taint, reason = "HTTP shell: uptime reporting for /healthz; never reaches stream-time logic")
fn dispatch(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    req: &Request,
    started: std::time::Instant,
) {
    let path = req.path.trim_end_matches('/');
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let stats = shared.stats();
            let body = format!(
                "{{\"status\":\"ok\",\"strategy\":\"{}\",\"finished\":{},\"uptime_ms\":{}}}",
                json::escape(&shared.session.lock().strategy_name()),
                stats.finished,
                started.elapsed().as_millis()
            );
            ok_json(stream, &body);
        }
        ("GET", "/metrics") => {
            let text = quill_telemetry::export::to_prometheus(&shared.registry.snapshot());
            respond(stream, "200 OK", "text/plain; version=0.0.4", &text);
        }
        ("GET", "/trace") => {
            // Two process lanes: the network shell on wall micros, the
            // session core on the logical event-time clock.
            let body = quill_telemetry::span::to_chrome_trace_parts(&[
                (
                    "quill-serve",
                    shared.wall_spans.domain(),
                    shared.wall_spans.spans(),
                ),
                ("session", shared.spans.domain(), shared.spans.spans()),
            ]);
            ok_json(stream, &body);
        }
        ("GET", "/stats") => ok_json(stream, &json::session_stats(&shared.stats())),
        ("GET", "/queries") => {
            let items: Vec<String> = shared
                .list_queries()
                .iter()
                .map(|(info, dsl)| json::query_info(info, dsl))
                .collect();
            ok_json(stream, &json::array(&items));
        }
        ("POST", "/queries") => match shared.register_dsl(req.body.trim()) {
            Ok(id) => ok_json(stream, &format!("{{\"id\":{}}}", id.raw())),
            Err(e) => bad_request(stream, &e.to_string()),
        },
        ("POST", "/finish") => {
            shared.request_finish();
            ok_json(stream, "{\"status\":\"draining\"}");
        }
        ("POST", "/shutdown") => {
            shared.request_exit();
            ok_json(stream, "{\"status\":\"shutting-down\"}");
        }
        (method, path) if path.starts_with("/queries/") => {
            dispatch_query(shared, stream, method, &path["/queries/".len()..]);
        }
        _ => not_found(stream),
    }
}

/// Route `/queries/{id}[...]`.
fn dispatch_query(shared: &Arc<Shared>, stream: &mut TcpStream, method: &str, rest: &str) {
    let (id_part, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(raw) = id_part.parse::<u64>() else {
        bad_request(stream, &format!("bad query id `{id_part}`"));
        return;
    };
    let id = QueryId::from_raw(raw);
    match (method, tail) {
        ("GET", None) => {
            let found = shared
                .list_queries()
                .into_iter()
                .find(|(info, _)| info.id == id);
            match found {
                Some((info, dsl)) => ok_json(stream, &json::query_info(&info, &dsl)),
                None => bad_request(stream, &format!("unknown query id {raw}")),
            }
        }
        ("DELETE", None) => match shared.deregister(id) {
            Ok(stats) => ok_json(stream, &json::query_stats(&stats)),
            Err(e) => bad_request(stream, &e.to_string()),
        },
        ("GET", Some("results")) => match shared.poll(id) {
            Ok(results) => {
                let items: Vec<String> = results.iter().map(json::window_result).collect();
                ok_json(stream, &json::array(&items));
            }
            Err(e) => bad_request(stream, &e.to_string()),
        },
        _ => not_found(stream),
    }
}
