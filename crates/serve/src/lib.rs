//! quill-serve: a resident multi-tenant streaming daemon over
//! [`quill_core`]'s session API.
//!
//! One daemon process owns one [`Session`](quill_core::prelude::Session)
//! — a single shared disorder-control core — and fans its staged stream
//! out to any number of concurrently registered continuous queries, each
//! with its own quality target and bounded result subscription.
//!
//! * **Ingest**: one TCP port accepting newline-delimited text or
//!   length-prefixed binary frames ([`wire`]), with per-source heartbeats
//!   for punctuation-driven strategies, per-connection timeouts and idle
//!   eviction ([`config::ConnConfig`]), and a bounded queue whose
//!   backpressure propagates to sources through the TCP receive window.
//! * **Control**: an HTTP port exposing Prometheus metrics, live query
//!   registration/deregistration, result polling and graceful drain
//!   ([`http`]).
//! * **Clients**: [`client::IngestClient`] streams frames with reconnect
//!   support; `quill-ingest` wraps it as a fixture-sending CLI.
//!
//! Start a daemon in-process with [`Server::start`], or from the CLI:
//!
//! ```text
//! quill-serve --ingest 127.0.0.1:7001 --http 127.0.0.1:7002 \
//!     --strategy aq:0.95 --query 'tumbling:1000;sum:0:total;key=1'
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod config;
pub mod error;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use client::IngestClient;
pub use config::{ConnConfig, RetryPolicy, ServeConfig, StrategySpec};
pub use error::{ServeError, ServeResult};
pub use server::{Server, ServerHandle};
pub use wire::Frame;
