//! The ingest wire protocol: newline-delimited text and length-prefixed
//! binary framing over one TCP port.
//!
//! A connection that opens with the 4-byte magic `QBIN` speaks the binary
//! protocol; anything else is parsed as text lines. Both carry the same two
//! frame kinds:
//!
//! * **Data**: an event-time timestamp plus a row of values.
//! * **Heartbeat**: a per-source progress promise (`no future event from
//!   this source is older than ts`), feeding progress-driven strategies
//!   like `PunctuatedBuffer`.
//!
//! # Text frames
//!
//! ```text
//! <ts> <v1> <v2> ...     # data: integers, floats, true/false, or strings
//! hb <ts> <source>       # heartbeat
//! ```
//!
//! # Binary frames
//!
//! Every frame is `u32 big-endian payload length` + payload. Payloads:
//!
//! ```text
//! 0x01 u64(ts) u16(n) value*n       # data
//! 0x02 u64(ts) value                # heartbeat (value = source key)
//! value = 0x00                      # null
//!       | 0x01 i64                  # int
//!       | 0x02 f64-bits             # float
//!       | 0x03 u16(len) utf8        # str
//!       | 0x04 u8                   # bool
//! ```
//!
//! All integers are big-endian. Arrival sequence numbers are assigned by
//! the server at enqueue time (a global arrival order across connections),
//! so the wire never carries them.

use crate::error::{ServeError, ServeResult};
use quill_engine::prelude::{Row, Timestamp, Value};

/// The 4-byte preamble selecting the binary protocol for a connection.
pub const BINARY_MAGIC: &[u8; 4] = b"QBIN";

/// One parsed ingest frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A data event: timestamp plus payload values (sequence numbers are
    /// assigned server-side in arrival order).
    Data {
        /// Event-time timestamp.
        ts: Timestamp,
        /// Payload values in field order.
        values: Vec<Value>,
    },
    /// A per-source heartbeat.
    Heartbeat {
        /// Event-time low bound promised by the source.
        ts: Timestamp,
        /// The source's key value.
        source: Value,
    },
}

/// Parse one scalar token of the text protocol.
fn parse_value(tok: &str) -> Value {
    if let Ok(i) = tok.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Value::Float(f);
    }
    match tok {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        "null" => Value::Null,
        s => Value::str(s),
    }
}

/// Parse one text line into a frame. Empty lines and `#` comments yield
/// `None`.
///
/// # Errors
/// [`ServeError::Protocol`] naming the malformed token.
pub fn parse_line(line: &str) -> ServeResult<Option<Frame>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut toks = line.split_ascii_whitespace();
    let head = toks.next().unwrap_or_default();
    if head == "hb" {
        let ts = toks
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| {
                ServeError::Protocol(format!("heartbeat needs `hb <ts> <source>`: `{line}`"))
            })?;
        let source = toks
            .next()
            .map(parse_value)
            .ok_or_else(|| ServeError::Protocol(format!("heartbeat needs a source: `{line}`")))?;
        return Ok(Some(Frame::Heartbeat {
            ts: Timestamp(ts),
            source,
        }));
    }
    let ts: u64 = head
        .parse()
        .map_err(|_| ServeError::Protocol(format!("bad timestamp `{head}` in `{line}`")))?;
    let values: Vec<Value> = toks.map(parse_value).collect();
    if values.is_empty() {
        return Err(ServeError::Protocol(format!(
            "data line has no values: `{line}`"
        )));
    }
    Ok(Some(Frame::Data {
        ts: Timestamp(ts),
        values,
    }))
}

/// Render a frame as one text line (round-trips through [`parse_line`] for
/// values the text protocol can spell).
pub fn to_line(frame: &Frame) -> String {
    fn fmt_value(v: &Value) -> String {
        match v {
            Value::Null => "null".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                let s = f.to_string();
                // Keep floats distinguishable from ints on the wire.
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => s.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }
    match frame {
        Frame::Data { ts, values } => {
            let vals: Vec<String> = values.iter().map(fmt_value).collect();
            format!("{} {}", ts.raw(), vals.join(" "))
        }
        Frame::Heartbeat { ts, source } => {
            format!("hb {} {}", ts.raw(), fmt_value(source))
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            let bytes = s.as_bytes();
            let len = bytes.len().min(u16::MAX as usize) as u16;
            out.extend_from_slice(&len.to_be_bytes());
            out.extend_from_slice(&bytes[..len as usize]);
        }
        Value::Bool(b) => {
            out.push(0x04);
            out.push(u8::from(*b));
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> ServeResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(ServeError::Protocol("truncated binary frame".into()));
        };
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> ServeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> ServeResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u64(&mut self) -> ServeResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn value(&mut self) -> ServeResult<Value> {
        Ok(match self.u8()? {
            0x00 => Value::Null,
            0x01 => Value::Int(self.u64()? as i64),
            0x02 => Value::Float(f64::from_bits(self.u64()?)),
            0x03 => {
                let len = self.u16()? as usize;
                let bytes = self.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| ServeError::Protocol("non-utf8 string value".into()))?;
                Value::str(s)
            }
            0x04 => Value::Bool(self.u8()? != 0),
            tag => {
                return Err(ServeError::Protocol(format!(
                    "unknown value tag 0x{tag:02x}"
                )));
            }
        })
    }
}

/// Encode a frame's binary payload (without the length prefix).
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match frame {
        Frame::Data { ts, values } => {
            out.push(0x01);
            out.extend_from_slice(&ts.raw().to_be_bytes());
            let n = values.len().min(u16::MAX as usize) as u16;
            out.extend_from_slice(&n.to_be_bytes());
            for v in values.iter().take(n as usize) {
                put_value(&mut out, v);
            }
        }
        Frame::Heartbeat { ts, source } => {
            out.push(0x02);
            out.extend_from_slice(&ts.raw().to_be_bytes());
            put_value(&mut out, source);
        }
    }
    out
}

/// Encode a full binary frame: `u32` big-endian length + payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one binary payload (the bytes after the length prefix).
///
/// # Errors
/// [`ServeError::Protocol`] on truncation, unknown tags or trailing bytes.
pub fn decode_payload(payload: &[u8]) -> ServeResult<Frame> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let frame = match r.u8()? {
        0x01 => {
            let ts = Timestamp(r.u64()?);
            let n = r.u16()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.value()?);
            }
            Frame::Data { ts, values }
        }
        0x02 => Frame::Heartbeat {
            ts: Timestamp(r.u64()?),
            source: r.value()?,
        },
        tag => {
            return Err(ServeError::Protocol(format!(
                "unknown frame tag 0x{tag:02x}"
            )));
        }
    };
    if r.at != payload.len() {
        return Err(ServeError::Protocol(format!(
            "{} trailing bytes after frame",
            payload.len() - r.at
        )));
    }
    Ok(frame)
}

/// Build an engine row from frame values.
pub fn row_from_values(values: Vec<Value>) -> Row {
    Row::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Data {
                ts: Timestamp(1234),
                values: vec![Value::Int(-5), Value::Float(2.5), Value::str("host-a")],
            },
            Frame::Data {
                ts: Timestamp(0),
                values: vec![Value::Null, Value::Bool(true)],
            },
            Frame::Heartbeat {
                ts: Timestamp(999),
                source: Value::Int(7),
            },
            Frame::Heartbeat {
                ts: Timestamp(1),
                source: Value::str("edge-3"),
            },
        ]
    }

    #[test]
    fn text_lines_round_trip() {
        for f in frames() {
            let line = to_line(&f);
            let parsed = parse_line(&line).unwrap().unwrap();
            assert_eq!(parsed, f, "line `{line}`");
        }
    }

    #[test]
    fn binary_frames_round_trip() {
        for f in frames() {
            let bytes = encode_frame(&f);
            let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
            assert_eq!(len, bytes.len() - 4);
            assert_eq!(decode_payload(&bytes[4..]).unwrap(), f);
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_text_is_refused() {
        assert!(parse_line("abc 1 2").is_err(), "bad timestamp");
        assert!(parse_line("100").is_err(), "no values");
        assert!(parse_line("hb").is_err());
        assert!(parse_line("hb 100").is_err(), "no source");
    }

    #[test]
    fn malformed_binary_is_refused() {
        assert!(decode_payload(&[]).is_err(), "empty");
        assert!(decode_payload(&[0x09]).is_err(), "unknown tag");
        let mut ok = encode_payload(&frames()[0]);
        ok.push(0xff);
        assert!(decode_payload(&ok).is_err(), "trailing bytes");
        let short = &encode_payload(&frames()[0])[..5];
        assert!(decode_payload(short).is_err(), "truncated");
    }

    #[test]
    fn floats_stay_floats_on_the_text_wire() {
        let f = Frame::Data {
            ts: Timestamp(10),
            values: vec![Value::Float(3.0)],
        };
        let line = to_line(&f);
        assert_eq!(parse_line(&line).unwrap().unwrap(), f, "line `{line}`");
    }
}
