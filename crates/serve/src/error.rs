//! The daemon's error type: engine errors, transport errors and protocol /
//! configuration violations under one roof.

use quill_engine::error::EngineError;
use std::fmt;
use std::io;

/// Anything that can go wrong serving streams.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid configuration (strategy spec, query DSL, CLI flags).
    Config(String),
    /// A malformed wire frame or HTTP request.
    Protocol(String),
    /// An engine-level refusal (invalid query, denied plan, unknown id).
    Engine(EngineError),
    /// Transport failure.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Shorthand result type.
pub type ServeResult<T> = Result<T, ServeError>;
