//! The daemon: TCP ingest sources feeding one shared session, an HTTP
//! control/metrics surface, bounded queues with backpressure and graceful
//! drain.
//!
//! # Architecture
//!
//! ```text
//! TCP conn ─┐ reader threads        core thread            HTTP thread
//! TCP conn ─┼─ parse frames ──► bounded queue ──► Session   /metrics
//! TCP conn ─┘ (seq stamping)    (backpressure)    │         /queries
//!                                                 ▼         /stats ...
//!                                           QueryHandles ◄──┘
//! ```
//!
//! * Each ingest connection gets a reader thread that parses wire frames
//!   (text or binary, auto-detected) and stamps a **global arrival
//!   sequence**. Readers block when the ingest queue is full, which stalls
//!   the TCP receive window: memory stays bounded, sources slow down.
//! * One core thread owns the [`Session`] and is the only event pusher;
//!   HTTP registration locks the session only between messages.
//! * Graceful drain: a finish request stops the acceptor, lets readers
//!   wind down, drains the queue to the last staged element, then calls
//!   [`Session::finish`] — every open window is flushed as if a final
//!   watermark had arrived. Results stay pollable afterwards.

use crate::config::{parse_query, query_to_dsl, ServeConfig};
use crate::error::{ServeError, ServeResult};
use crate::http;
use crate::wire::{self, Frame};
use parking_lot::Mutex;
use quill_core::prelude::{QueryConfig, QueryHandle, QueryId, QuerySpec, Session, SessionStats};
use quill_engine::event::Event;
use quill_engine::operator::WindowResult;
use quill_engine::time::Timestamp;
use quill_engine::value::Key;
use quill_telemetry::{SpanRecorder, Stage};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One unit of ingest work.
enum Msg {
    Data(Event),
    Heartbeat(Key, Timestamp),
}

/// State shared between every thread of one server.
pub(crate) struct Shared {
    pub(crate) registry: quill_telemetry::Registry,
    pub(crate) session: Mutex<Session>,
    pub(crate) handles: Mutex<HashMap<u64, QueryHandle>>,
    pub(crate) config: ServeConfig,
    /// Arrival sequence stamped onto events at parse time (global across
    /// connections, strictly increasing).
    seq: AtomicU64,
    /// Current ingest queue depth (mirrored into the
    /// `quill.executor.queue_depth` gauge).
    queue_depth: AtomicU64,
    depth_gauge: quill_telemetry::Gauge,
    conns_gauge: quill_telemetry::Gauge,
    conns_total: quill_telemetry::Counter,
    pub(crate) ingested: quill_telemetry::Counter,
    heartbeats: quill_telemetry::Counter,
    protocol_errors: quill_telemetry::Counter,
    evicted: quill_telemetry::Counter,
    /// Logical-clock (event-time) pipeline spans recorded inside the
    /// session: buffer residency and query-tagged result delivery.
    pub(crate) spans: SpanRecorder,
    /// Wall-clock spans recorded by the network shell: connection
    /// lifetimes, ingest decode batches and query registration lifetimes.
    /// Timestamps are microseconds since `epoch`.
    pub(crate) wall_spans: SpanRecorder,
    /// Wall-clock origin for `wall_spans` (server start).
    epoch: std::time::Instant,
    /// Registration wall time of each live query (`now_micros` at
    /// register), consumed into a [`Stage::Query`] span at deregister or
    /// drain.
    query_started: Mutex<HashMap<u64, u64>>,
    /// Ordinal stamped onto connection spans as their shard tag.
    conn_seq: AtomicU64,
    active_readers: AtomicU64,
    /// Stop accepting + ask readers to wind down; core drains then
    /// finishes the session.
    finish_requested: AtomicBool,
    /// Stop the HTTP loop and the whole server.
    exit_requested: AtomicBool,
}

impl Shared {
    /// Microseconds since server start — the clock of every wall-domain
    /// span. Safe for the data path: `elapsed()` never influences
    /// stream-time decisions.
    // quill-lint: allow(wall-clock-taint, reason = "wall-domain span clock; readings feed latency telemetry only, never stream-time decisions")
    pub(crate) fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Close the [`Stage::Query`] span of query `id`, if still open.
    fn close_query_span(&self, id: u64) {
        if let Some(t0) = self.query_started.lock().remove(&id) {
            self.wall_spans
                .record_for_query(Stage::Query, t0, self.now_micros(), 0, id);
        }
    }

    /// Close every still-open query span (graceful drain).
    pub(crate) fn close_all_query_spans(&self) {
        let open: Vec<(u64, u64)> = self.query_started.lock().drain().collect();
        let now = self.now_micros();
        for (id, t0) in open {
            self.wall_spans
                .record_for_query(Stage::Query, t0, now, 0, id);
        }
    }

    pub(crate) fn finish_requested(&self) -> bool {
        self.finish_requested.load(Ordering::SeqCst)
    }

    pub(crate) fn request_finish(&self) {
        self.finish_requested.store(true, Ordering::SeqCst);
    }

    pub(crate) fn exit_requested(&self) -> bool {
        self.exit_requested.load(Ordering::SeqCst)
    }

    pub(crate) fn request_exit(&self) {
        self.request_finish();
        self.exit_requested.store(true, Ordering::SeqCst);
    }

    fn depth_inc(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.depth_gauge.set_u64(d);
    }

    fn depth_dec(&self) {
        let d = self.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
        self.depth_gauge.set_u64(d);
    }

    /// Register a query from its DSL form; the handle is retained for HTTP
    /// result polling.
    pub(crate) fn register_dsl(&self, dsl: &str) -> ServeResult<QueryId> {
        let (spec, cfg) = parse_query(dsl)?;
        self.register_spec(&spec, cfg)
    }

    /// Register an already-parsed query.
    pub(crate) fn register_spec(&self, spec: &QuerySpec, cfg: QueryConfig) -> ServeResult<QueryId> {
        let handle = self.session.lock().register_with(spec, cfg)?;
        let id = handle.id();
        self.handles.lock().insert(id.raw(), handle);
        if self.wall_spans.is_enabled() {
            self.query_started
                .lock()
                .insert(id.raw(), self.now_micros());
        }
        Ok(id)
    }

    /// Deregister; returns the final stats JSON-ready struct.
    pub(crate) fn deregister(&self, id: QueryId) -> ServeResult<quill_core::prelude::QueryStats> {
        let stats = self.session.lock().deregister(id)?;
        self.handles.lock().remove(&id.raw());
        self.close_query_span(id.raw());
        Ok(stats)
    }

    /// Drain pending results for one query.
    ///
    /// Clones the (Arc-backed) handle out of the registry so the map guard
    /// is released before polling: `QueryHandle::poll` takes the per-query
    /// state lock, and holding the registry lock across it would stall
    /// register/deregister behind a busy query.
    pub(crate) fn poll(&self, id: QueryId) -> ServeResult<Vec<WindowResult>> {
        let handle = {
            let handles = self.handles.lock();
            handles
                .get(&id.raw())
                .cloned()
                .ok_or_else(|| ServeError::Config(format!("unknown query id {id}")))?
        };
        Ok(handle.poll())
    }

    /// Session-wide counters.
    pub(crate) fn stats(&self) -> SessionStats {
        self.session.lock().stats()
    }

    /// Describe every registered query as `(info, dsl)` pairs.
    pub(crate) fn list_queries(&self) -> Vec<(quill_core::prelude::QueryInfo, String)> {
        let session = self.session.lock();
        session
            .query_ids()
            .into_iter()
            .filter_map(|id| session.query_info(id))
            .map(|info| {
                let dsl = query_to_dsl(&info.spec, info.required_completeness);
                (info, dsl)
            })
            .collect()
    }
}

/// A running server: join handles plus the shared state. Obtained from
/// [`Server::start`]; drives everything needed by the bins and tests
/// (in-process registration, polling, drain, shutdown).
pub struct ServerHandle {
    shared: Arc<Shared>,
    ingest_addr: SocketAddr,
    http_addr: SocketAddr,
    core: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Namespace for starting servers.
pub struct Server;

impl Server {
    /// Bind both listeners, start every thread, and return the handle.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> ServeResult<ServerHandle> {
        let registry = quill_telemetry::Registry::new();
        let (spans, wall_spans) = if config.span_capacity == 0 {
            (SpanRecorder::disabled(), SpanRecorder::disabled())
        } else {
            (
                SpanRecorder::new(config.span_capacity),
                SpanRecorder::wall(config.span_capacity),
            )
        };
        spans.instrument(&registry);
        wall_spans.instrument(&registry);
        let session = Session::new(config.strategy.build())
            .with_telemetry(&registry)
            .with_spans(&spans);
        let shared = Arc::new(Shared {
            session: Mutex::new(session),
            handles: Mutex::new(HashMap::new()),
            spans,
            wall_spans,
            // quill-lint: allow(no-wall-clock, reason = "origin of the wall span domain; never read on stream-time decisions")
            epoch: std::time::Instant::now(),
            query_started: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            depth_gauge: registry.gauge("quill.executor.queue_depth"),
            conns_gauge: registry.gauge("quill.serve.connections"),
            conns_total: registry.counter("quill.serve.connections_total"),
            ingested: registry.counter("quill.serve.ingested"),
            heartbeats: registry.counter("quill.serve.heartbeats"),
            protocol_errors: registry.counter("quill.serve.protocol_errors"),
            evicted: registry.counter("quill.serve.evicted"),
            active_readers: AtomicU64::new(0),
            finish_requested: AtomicBool::new(false),
            exit_requested: AtomicBool::new(false),
            registry,
            config: config.clone(),
        });

        let ingest_listener = TcpListener::bind(&config.ingest_addr)?;
        let http_listener = TcpListener::bind(&config.http_addr)?;
        let ingest_addr = ingest_listener.local_addr()?;
        let http_addr = http_listener.local_addr()?;
        ingest_listener.set_nonblocking(true)?;
        http_listener.set_nonblocking(true)?;

        let (tx, rx) = std::sync::mpsc::sync_channel::<Msg>(config.queue_capacity.max(1));
        let readers = Arc::new(Mutex::new(Vec::new()));

        let core = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || core_loop(&shared, &rx))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || accept_loop(&shared, &ingest_listener, tx, &readers))
        };
        let http = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || http::serve(&shared, &http_listener))
        };

        Ok(ServerHandle {
            shared,
            ingest_addr,
            http_addr,
            core: Some(core),
            acceptor: Some(acceptor),
            http: Some(http),
            readers,
        })
    }
}

impl ServerHandle {
    /// The bound ingest address (resolved port for `:0` binds).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound HTTP address.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The server's telemetry registry (scraped by `/metrics`).
    pub fn registry(&self) -> &quill_telemetry::Registry {
        &self.shared.registry
    }

    /// Register a query from DSL text (same grammar as `POST /queries`).
    ///
    /// # Errors
    /// Malformed DSL, invalid specs and denied plans are refused.
    pub fn register(&self, dsl: &str) -> ServeResult<QueryId> {
        self.shared.register_dsl(dsl)
    }

    /// Register an already-built query spec.
    ///
    /// # Errors
    /// Invalid specs and denied plans are refused.
    pub fn register_spec(&self, spec: &QuerySpec, cfg: QueryConfig) -> ServeResult<QueryId> {
        self.shared.register_spec(spec, cfg)
    }

    /// Deregister a query, returning its final counters.
    ///
    /// # Errors
    /// Unknown ids are refused.
    pub fn deregister(&self, id: QueryId) -> ServeResult<quill_core::prelude::QueryStats> {
        self.shared.deregister(id)
    }

    /// Drain a query's pending results.
    ///
    /// # Errors
    /// Unknown ids are refused.
    pub fn poll(&self, id: QueryId) -> ServeResult<Vec<WindowResult>> {
        self.shared.poll(id)
    }

    /// Session-wide counters.
    pub fn stats(&self) -> SessionStats {
        self.shared.stats()
    }

    /// Request a graceful drain (stop ingest, flush, finish the session)
    /// without stopping the HTTP surface. Equivalent to `POST /finish`.
    pub fn request_finish(&self) {
        self.shared.request_finish();
    }

    /// `false` once a full shutdown (`POST /shutdown`) has been requested.
    pub fn running(&self) -> bool {
        !self.shared.exit_requested()
    }

    /// Drain and wait until the session has finished (the core thread
    /// exits once the last staged element is routed).
    pub fn finish(&mut self) {
        self.shared.request_finish();
        if let Some(core) = self.core.take() {
            let _ = core.join();
        }
    }

    /// Full shutdown: drain, stop every thread, return final session stats.
    pub fn shutdown(mut self) -> SessionStats {
        self.finish();
        self.shared.request_exit();
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        let readers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.readers.lock());
        for r in readers {
            let _ = r.join();
        }
        if let Some(t) = self.http.take() {
            let _ = t.join();
        }
        self.shared.stats()
    }
}

/// Accept ingest connections until a finish is requested.
fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    tx: SyncSender<Msg>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.finish_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let tx = tx.clone();
                shared.active_readers.fetch_add(1, Ordering::SeqCst);
                shared.conns_total.inc();
                shared
                    .conns_gauge
                    .set_u64(shared.active_readers.load(Ordering::SeqCst));
                let conn_no = shared.conn_seq.fetch_add(1, Ordering::SeqCst) as u32;
                let t = std::thread::spawn(move || {
                    let opened = shared.now_micros();
                    read_connection(&shared, stream, &tx);
                    shared.wall_spans.record(
                        Stage::Connection,
                        opened,
                        shared.now_micros(),
                        conn_no,
                    );
                    let left = shared.active_readers.fetch_sub(1, Ordering::SeqCst) - 1;
                    shared.conns_gauge.set_u64(left);
                });
                readers.lock().push(t);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Dropping `tx` here lets the core observe disconnection once every
    // reader clone is gone too.
}

/// Read one ingest connection until EOF, error, idle eviction or drain.
fn read_connection(shared: &Arc<Shared>, mut stream: TcpStream, tx: &SyncSender<Msg>) {
    let conn = &shared.config.conn;
    let _ = stream.set_read_timeout(Some(conn.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 4 * 1024];
    let mut binary: Option<bool> = None;
    let mut idle_ticks: u64 = 0;
    let max_idle = conn.idle_ticks();

    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF: clean close.
            Ok(n) => {
                idle_ticks = 0;
                buf.extend_from_slice(&chunk[..n]);
                if binary.is_none() && buf.len() >= wire::BINARY_MAGIC.len() {
                    if &buf[..4] == wire::BINARY_MAGIC {
                        buf.drain(..4);
                        binary = Some(true);
                    } else {
                        binary = Some(false);
                    }
                }
                let decode_spans = binary.is_some() && shared.wall_spans.is_enabled();
                let t0 = if decode_spans { shared.now_micros() } else { 0 };
                let ok = match binary {
                    Some(true) => drain_binary(shared, &mut buf, tx, conn.max_frame_len),
                    Some(false) => drain_text(shared, &mut buf, tx),
                    None => true,
                };
                if decode_spans {
                    // One decode span per drained receive chunk; includes
                    // any backpressure wait on the ingest queue.
                    shared
                        .wall_spans
                        .record(Stage::IngestDecode, t0, shared.now_micros(), 0);
                }
                if !ok {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.finish_requested() {
                    break;
                }
                idle_ticks += 1;
                if idle_ticks >= max_idle {
                    shared.evicted.inc();
                    break;
                }
            }
            Err(_) => break,
        }
        if shared.finish_requested() && buf.is_empty() {
            break;
        }
    }
    // Flush a trailing unterminated text line.
    if binary == Some(false) && !buf.is_empty() {
        buf.push(b'\n');
        let _ = drain_text(shared, &mut buf, tx);
    }
}

/// Enqueue one frame; blocking on a full queue is the backpressure path
/// (the gauge tracks depth through both paths). Returns `false` when the
/// core is gone.
fn enqueue(shared: &Shared, tx: &SyncSender<Msg>, frame: Frame) -> bool {
    let msg = match frame {
        Frame::Data { ts, values } => {
            let seq = shared.seq.fetch_add(1, Ordering::SeqCst);
            shared.ingested.inc();
            Msg::Data(Event::new(ts, seq, wire::row_from_values(values)))
        }
        Frame::Heartbeat { ts, source } => {
            shared.heartbeats.inc();
            Msg::Heartbeat(Key(source), ts)
        }
    };
    // Count the element in before sending: the core may receive (and
    // decrement) the instant the send lands, so incrementing afterwards
    // would race the gauge below zero.
    shared.depth_inc();
    match tx.try_send(msg) {
        Ok(()) => true,
        // Fast path full: fall back to a blocking send (backpressure).
        Err(TrySendError::Full(msg)) => {
            if tx.send(msg).is_err() {
                shared.depth_dec();
                return false;
            }
            true
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.depth_dec();
            false
        }
    }
}

/// Parse and enqueue complete text lines from `buf`. Returns `false` to
/// drop the connection (protocol error or core gone).
fn drain_text(shared: &Shared, buf: &mut Vec<u8>, tx: &SyncSender<Msg>) -> bool {
    while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = buf.drain(..=nl).collect();
        let Ok(text) = std::str::from_utf8(&line) else {
            shared.protocol_errors.inc();
            return false;
        };
        match wire::parse_line(text) {
            Ok(None) => {}
            Ok(Some(frame)) => {
                if !enqueue(shared, tx, frame) {
                    return false;
                }
            }
            Err(_) => {
                shared.protocol_errors.inc();
                return false;
            }
        }
    }
    true
}

/// Parse and enqueue complete binary frames from `buf`.
fn drain_binary(
    shared: &Shared,
    buf: &mut Vec<u8>,
    tx: &SyncSender<Msg>,
    max_frame: usize,
) -> bool {
    loop {
        if buf.len() < 4 {
            return true;
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > max_frame {
            shared.protocol_errors.inc();
            return false;
        }
        if buf.len() < 4 + len {
            return true;
        }
        let payload: Vec<u8> = buf.drain(..4 + len).skip(4).collect();
        match wire::decode_payload(&payload) {
            Ok(frame) => {
                if !enqueue(shared, tx, frame) {
                    return false;
                }
            }
            Err(_) => {
                shared.protocol_errors.inc();
                return false;
            }
        }
    }
}

/// The session core: the only thread that pushes into the session. Exits
/// after finishing the session once a drain was requested and the queue
/// has emptied (or every sender disconnected).
fn core_loop(shared: &Arc<Shared>, rx: &Receiver<Msg>) {
    let tick = shared.config.conn.read_timeout;
    loop {
        match rx.recv_timeout(tick) {
            Ok(msg) => {
                shared.depth_dec();
                let mut session = shared.session.lock();
                match msg {
                    Msg::Data(e) => session.push(e),
                    Msg::Heartbeat(key, ts) => session.heartbeat(&key, ts),
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                let drained = shared.queue_depth.load(Ordering::SeqCst) == 0
                    && shared.active_readers.load(Ordering::SeqCst) == 0;
                if shared.finish_requested() && drained {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    shared.session.lock().finish();
    shared.close_all_query_spans();
}
