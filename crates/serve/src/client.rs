//! Client-side ingest: connect (with retries), stream frames in either
//! wire mode, reconnect mid-stream without losing elements.
//!
//! [`IngestClient`] is what the `quill-ingest` bin and the integration
//! tests use; it is deliberately dumb — framing and retry policy only, no
//! buffering beyond the OS socket.

use crate::config::RetryPolicy;
use crate::error::{ServeError, ServeResult};
use crate::wire::{self, Frame};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected ingest source.
pub struct IngestClient {
    addr: String,
    stream: TcpStream,
    binary: bool,
    retry: RetryPolicy,
    sent: u64,
}

impl IngestClient {
    /// Connect in text mode.
    ///
    /// # Errors
    /// Connection failure after exhausting the retry policy.
    pub fn connect(addr: impl Into<String>) -> ServeResult<IngestClient> {
        IngestClient::connect_with(addr, false, RetryPolicy::default())
    }

    /// Connect, choosing the wire mode and retry policy. Binary mode sends
    /// the `QBIN` preamble immediately.
    ///
    /// # Errors
    /// Connection failure after exhausting the retry policy.
    pub fn connect_with(
        addr: impl Into<String>,
        binary: bool,
        retry: RetryPolicy,
    ) -> ServeResult<IngestClient> {
        let addr = addr.into();
        let stream = connect_retry(&addr, retry)?;
        let mut client = IngestClient {
            addr,
            stream,
            binary,
            retry,
            sent: 0,
        };
        client.preamble()?;
        Ok(client)
    }

    fn preamble(&mut self) -> ServeResult<()> {
        if self.binary {
            self.stream.write_all(wire::BINARY_MAGIC)?;
        }
        Ok(())
    }

    /// Frames sent over the lifetime of this client (across reconnects).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Send one frame.
    ///
    /// # Errors
    /// Transport failure (callers may [`IngestClient::reconnect`] and
    /// resend).
    pub fn send(&mut self, frame: &Frame) -> ServeResult<()> {
        if self.binary {
            self.stream.write_all(&wire::encode_frame(frame))?;
        } else {
            let mut line = wire::to_line(frame);
            line.push('\n');
            self.stream.write_all(line.as_bytes())?;
        }
        self.sent += 1;
        Ok(())
    }

    /// Drop the current connection and establish a fresh one (same mode,
    /// same retry policy). Used by tests to exercise mid-stream reconnects
    /// and by sources recovering from transport errors.
    ///
    /// # Errors
    /// Connection failure after exhausting the retry policy.
    pub fn reconnect(&mut self) -> ServeResult<()> {
        self.stream = connect_retry(&self.addr, self.retry)?;
        self.preamble()
    }

    /// Flush and close, signalling EOF to the server.
    ///
    /// # Errors
    /// Transport failure while flushing.
    pub fn finish(mut self) -> ServeResult<()> {
        self.stream.flush()?;
        Ok(())
    }
}

/// Connect with linear-backoff retries.
fn connect_retry(addr: &str, retry: RetryPolicy) -> ServeResult<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            std::thread::sleep(retry.backoff * attempt);
        }
        match addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable address")
            })
            .and_then(TcpStream::connect)
        {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(match last {
        Some(e) => ServeError::Io(e),
        None => ServeError::Config(format!("cannot connect to `{addr}`")),
    })
}

/// A deterministic disordered fixture: `events` data frames with timestamps
/// scrambled by a seeded LCG (bounded displacement `max_delay`), plus a
/// heartbeat from `source 0` every `hb_every` events when nonzero. Row
/// layout: `[value: int, source: int]`.
pub fn fixture(events: u64, seed: u64, max_delay: u64, hb_every: u64) -> Vec<Frame> {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let mut out = Vec::with_capacity(events as usize);
    let mut max_ts = 0u64;
    for i in 0..events {
        // Park–Miller-ish LCG: deterministic, dependency-free.
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let delay = if max_delay == 0 {
            0
        } else {
            (rng >> 33) % (max_delay + 1)
        };
        let base = i * 10;
        let ts = base.saturating_sub(delay);
        max_ts = max_ts.max(ts);
        let source = (i % 2) as i64;
        out.push(Frame::Data {
            ts: quill_engine::prelude::Timestamp(ts),
            values: vec![
                quill_engine::prelude::Value::Int((i % 100) as i64),
                quill_engine::prelude::Value::Int(source),
            ],
        });
        if hb_every != 0 && i > 0 && i % hb_every == 0 {
            // A conservative promise: nothing older than the slowest
            // possible in-flight element.
            let promise = base.saturating_sub(max_delay);
            for s in 0..2i64 {
                out.push(Frame::Heartbeat {
                    ts: quill_engine::prelude::Timestamp(promise),
                    source: quill_engine::prelude::Value::Int(s),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_disordered() {
        let a = fixture(500, 42, 300, 0);
        let b = fixture(500, 42, 300, 0);
        assert_eq!(a, b);
        let c = fixture(500, 43, 300, 0);
        assert_ne!(a, c, "seed changes the fixture");
        let ts: Vec<u64> = a
            .iter()
            .filter_map(|f| match f {
                Frame::Data { ts, .. } => Some(ts.raw()),
                _ => None,
            })
            .collect();
        assert!(ts.windows(2).any(|w| w[1] < w[0]), "fixture is disordered");
    }

    #[test]
    fn fixture_emits_heartbeats_for_both_sources() {
        let frames = fixture(100, 7, 50, 25);
        let hbs = frames
            .iter()
            .filter(|f| matches!(f, Frame::Heartbeat { .. }))
            .count();
        assert!(hbs >= 6, "expected heartbeats, got {hbs}");
    }
}
