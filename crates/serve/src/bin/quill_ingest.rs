//! Deterministic fixture sender for smoke tests and soaks.
//!
//! ```text
//! quill-ingest --addr HOST:PORT [--events N] [--seed N] [--max-delay N]
//!              [--hb-every N] [--binary] [--reconnect-at N]
//! ```
//!
//! Streams the seeded disordered fixture from
//! [`quill_serve::client::fixture`]; `--reconnect-at N` drops and
//! re-establishes the connection after the Nth frame to exercise
//! mid-stream reconnects.

use quill_serve::client::{fixture, IngestClient};
use quill_serve::config::RetryPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: quill-ingest --addr HOST:PORT [--events N] [--seed N] \
         [--max-delay N] [--hb-every N] [--binary] [--reconnect-at N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = None;
    let mut events: u64 = 10_000;
    let mut seed: u64 = 42;
    let mut max_delay: u64 = 500;
    let mut hb_every: u64 = 0;
    let mut binary = false;
    let mut reconnect_at: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--events" => events = value("--events").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-delay" => max_delay = value("--max-delay").parse().unwrap_or_else(|_| usage()),
            "--hb-every" => hb_every = value("--hb-every").parse().unwrap_or_else(|_| usage()),
            "--binary" => binary = true,
            "--reconnect-at" => {
                reconnect_at = Some(value("--reconnect-at").parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(addr) = addr else { usage() };

    let frames = fixture(events, seed, max_delay, hb_every);
    let mut client = match IngestClient::connect_with(&addr, binary, RetryPolicy::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("quill-ingest: {e}");
            std::process::exit(1);
        }
    };
    for (i, frame) in frames.iter().enumerate() {
        if reconnect_at == Some(i as u64) {
            if let Err(e) = client.reconnect() {
                eprintln!("quill-ingest: reconnect: {e}");
                std::process::exit(1);
            }
        }
        if let Err(e) = client.send(frame) {
            // One transport-level retry after reconnecting — nothing is
            // lost because the frame is resent on the new connection.
            if client
                .reconnect()
                .and_then(|()| client.send(frame))
                .is_err()
            {
                eprintln!("quill-ingest: send: {e}");
                std::process::exit(1);
            }
        }
    }
    let sent = client.sent();
    if let Err(e) = client.finish() {
        eprintln!("quill-ingest: {e}");
        std::process::exit(1);
    }
    println!("sent={sent}");
}
