//! The daemon CLI.
//!
//! ```text
//! quill-serve [--ingest ADDR] [--http ADDR] [--strategy SPEC]
//!             [--queue N] [--query DSL]... [--read-timeout-ms N]
//!             [--idle-timeout-ms N] [--span-capacity N]
//! ```
//!
//! Prints `ingest=ADDR` and `http=ADDR` lines once bound (so callers can
//! use `:0` ephemeral ports), then runs until `POST /shutdown`.

use quill_serve::{ServeConfig, Server, StrategySpec};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: quill-serve [--ingest ADDR] [--http ADDR] [--strategy SPEC] \
         [--queue N] [--query DSL]... [--read-timeout-ms N] [--idle-timeout-ms N] \
         [--span-capacity N]\n\
         \n\
         SPEC: dropall | fixed:<k> | mp[:<cap>] | aq:<q> | punct:<field>:<sources>[:<slack>]\n\
         DSL:  <window>;<aggregates>[;key=<f>][;completeness=<q>][;capacity=<n>][;slo=<lat>]\n\
         --span-capacity: span ring size behind GET /trace (0 disables tracing)"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut queries: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--ingest" => config.ingest_addr = value("--ingest"),
            "--http" => config.http_addr = value("--http"),
            "--strategy" => match StrategySpec::parse(&value("--strategy")) {
                Ok(s) => config.strategy = s,
                Err(e) => {
                    eprintln!("{e}");
                    usage();
                }
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) => config.queue_capacity = n,
                Err(_) => usage(),
            },
            "--query" => queries.push(value("--query")),
            "--read-timeout-ms" => match value("--read-timeout-ms").parse() {
                Ok(ms) => config.conn.read_timeout = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").parse() {
                Ok(ms) => config.conn.idle_timeout = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--span-capacity" => match value("--span-capacity").parse() {
                Ok(n) => config.span_capacity = n,
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("quill-serve: {e}");
            std::process::exit(1);
        }
    };
    for dsl in &queries {
        match handle.register(dsl) {
            Ok(id) => println!("query={id}"),
            Err(e) => {
                eprintln!("quill-serve: --query `{dsl}`: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("ingest={}", handle.ingest_addr());
    println!("http={}", handle.http_addr());

    while handle.running() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = handle.shutdown();
    println!(
        "drained events={} results={} queries={}",
        stats.events, stats.results, stats.queries
    );
}
