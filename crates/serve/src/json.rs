//! Minimal JSON rendering for the HTTP control surface.
//!
//! The workspace is dependency-free, so responses are built with a small
//! hand-rolled writer (the same approach as the plan analyzer's JSONL and
//! the telemetry exporters). Only rendering is needed: requests use the
//! compact query DSL (`crate::config::parse_query`), not JSON bodies.

use quill_core::prelude::{QueryInfo, QueryStats, SessionStats};
use quill_engine::operator::WindowResult;
use quill_engine::prelude::Value;

/// Escape a string for a JSON string literal (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 as JSON (JSON has no spelling for non-finite values; they
/// become `null`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Render an engine value as JSON.
pub fn value(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => num(*f),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Bool(b) => b.to_string(),
    }
}

/// Render one window result as a JSON object.
pub fn window_result(r: &WindowResult) -> String {
    let aggs: Vec<String> = r.aggregates.iter().map(value).collect();
    format!(
        "{{\"key\":{},\"start\":{},\"end\":{},\"count\":{},\"revision\":{},\"aggregates\":[{}]}}",
        value(&r.key),
        r.window.start.raw(),
        r.window.end.raw(),
        r.count,
        r.revision,
        aggs.join(",")
    )
}

/// Render a query's counters as a JSON object.
pub fn query_stats(s: &QueryStats) -> String {
    format!(
        "{{\"emitted\":{},\"overflow_dropped\":{},\"pending\":{},\"accepted\":{},\
         \"late_dropped\":{},\"mean_latency\":{},\"slo_breaches\":{},\"closed\":{}}}",
        s.emitted,
        s.overflow_dropped,
        s.pending,
        s.window.accepted,
        s.window.late_dropped,
        num(s.mean_latency),
        s.slo_breaches,
        s.closed
    )
}

/// Render one `/queries` listing entry.
pub fn query_info(info: &QueryInfo, dsl: &str) -> String {
    let target = match info.required_completeness {
        Some(q) => num(q),
        None => "null".into(),
    };
    format!(
        "{{\"id\":{},\"query\":\"{}\",\"required_completeness\":{},\"stats\":{}}}",
        info.id.raw(),
        escape(dsl),
        target,
        query_stats(&info.stats)
    )
}

/// Render session-wide counters.
pub fn session_stats(s: &SessionStats) -> String {
    let clock = match s.clock {
        Some(t) => t.raw().to_string(),
        None => "null".into(),
    };
    format!(
        "{{\"events\":{},\"heartbeats\":{},\"queries\":{},\"results\":{},\"current_k\":{},\
         \"buffered\":{},\"clock\":{},\"finished\":{}}}",
        s.events,
        s.heartbeats,
        s.queries,
        s.results,
        s.current_k.raw(),
        s.buffered,
        clock,
        s.finished
    )
}

/// Render a JSON array from rendered elements.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Render an error object.
pub fn error(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::{Timestamp, Window};

    #[test]
    fn window_results_render_all_value_kinds() {
        let r = WindowResult {
            key: Value::str("host\"1"),
            window: Window::new(Timestamp(0), Timestamp(100)),
            count: 3,
            revision: 0,
            aggregates: vec![Value::Int(7), Value::Float(2.5), Value::Null],
        };
        let j = window_result(&r);
        assert!(j.contains("\"key\":\"host\\\"1\""), "{j}");
        assert!(j.contains("\"aggregates\":[7,2.5,null]"), "{j}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(value(&Value::Float(f64::NAN)), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\nb\t\u{1}"), "a\\nb\\t\\u0001");
        assert_eq!(error("x\"y"), "{\"error\":\"x\\\"y\"}");
    }
}
