//! Daemon configuration: strategy specs, per-connection policies and the
//! compact query DSL used for live registration.
//!
//! Everything here is parseable from CLI flags / HTTP request bodies and
//! printable back, so a running daemon's configuration is always
//! reproducible from text.

use crate::error::{ServeError, ServeResult};
use quill_core::prelude::{
    AggregateKind, AggregateSpec, AqKSlack, DisorderControl, DropAll, FixedKSlack, MpKSlack,
    PunctuatedBuffer, QueryConfig, QuerySpec, WindowSpec,
};
use std::time::Duration;

/// Which disorder-control strategy the session core runs, in a form that
/// parses from a CLI flag (`--strategy aq:0.95`) and rebuilds fresh
/// [`DisorderControl`] instances.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySpec {
    /// `dropall`: K = 0, no reordering.
    DropAll,
    /// `fixed:<k>`: constant slack.
    Fixed(u64),
    /// `mp` / `mp:<cap>`: max-delay ratchet, optionally capped.
    Mp(Option<u64>),
    /// `aq:<q>`: quality-driven adaptive slack targeting completeness `q`.
    Aq(f64),
    /// `punct:<source_field>:<expected_sources>[:<slack>]`: per-source
    /// punctuation (heartbeat-driven watermarks).
    Punctuated {
        /// Row index carrying the source id.
        source_field: usize,
        /// Distinct sources the combined watermark waits for.
        expected_sources: usize,
        /// Extra per-source slack (intra-source disorder compensation).
        slack: u64,
    },
}

impl StrategySpec {
    /// Parse a spec string (see the variant docs for the grammar).
    ///
    /// # Errors
    /// [`ServeError::Config`] on unknown names or malformed parameters.
    pub fn parse(s: &str) -> ServeResult<StrategySpec> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let bad = |what: &str| ServeError::Config(format!("strategy `{s}`: {what}"));
        match (head, rest.as_slice()) {
            ("dropall", []) => Ok(StrategySpec::DropAll),
            ("fixed", [k]) => Ok(StrategySpec::Fixed(
                k.parse().map_err(|_| bad("K must be an integer"))?,
            )),
            ("mp", []) => Ok(StrategySpec::Mp(None)),
            ("mp", [cap]) => Ok(StrategySpec::Mp(Some(
                cap.parse().map_err(|_| bad("cap must be an integer"))?,
            ))),
            ("aq", [q]) => {
                let q: f64 = q.parse().map_err(|_| bad("target must be a float"))?;
                if !(q > 0.0 && q <= 1.0) {
                    return Err(bad("completeness target must be in (0, 1]"));
                }
                Ok(StrategySpec::Aq(q))
            }
            ("punct", [field, sources]) => Ok(StrategySpec::Punctuated {
                source_field: field.parse().map_err(|_| bad("source field index"))?,
                expected_sources: sources.parse().map_err(|_| bad("expected sources"))?,
                slack: 0,
            }),
            ("punct", [field, sources, slack]) => Ok(StrategySpec::Punctuated {
                source_field: field.parse().map_err(|_| bad("source field index"))?,
                expected_sources: sources.parse().map_err(|_| bad("expected sources"))?,
                slack: slack.parse().map_err(|_| bad("slack"))?,
            }),
            _ => Err(bad("expected dropall | fixed:<k> | mp[:<cap>] | aq:<q> | \
                 punct:<field>:<sources>[:<slack>]")),
        }
    }

    /// Build a fresh strategy instance for a session core.
    pub fn build(&self) -> Box<dyn DisorderControl> {
        match *self {
            StrategySpec::DropAll => Box::new(DropAll::new()),
            StrategySpec::Fixed(k) => Box::new(FixedKSlack::new(k)),
            StrategySpec::Mp(None) => Box::new(MpKSlack::new()),
            StrategySpec::Mp(Some(cap)) => Box::new(MpKSlack::bounded(cap)),
            StrategySpec::Aq(q) => Box::new(AqKSlack::for_completeness(q)),
            StrategySpec::Punctuated {
                source_field,
                expected_sources,
                slack,
            } => Box::new(
                PunctuatedBuffer::new(source_field, expected_sources).with_source_slack(slack),
            ),
        }
    }
}

/// Per-connection transport policy (lightflus-style: every socket carries
/// its own timeout/eviction/limit envelope).
#[derive(Debug, Clone, PartialEq)]
pub struct ConnConfig {
    /// Socket read timeout: the granularity at which a reader notices
    /// shutdown and accumulates idle time.
    pub read_timeout: Duration,
    /// Evict a connection once it has been idle (no bytes) this long.
    /// Idleness is counted in whole read-timeout ticks, so eviction needs no
    /// wall-clock reads on the data path.
    pub idle_timeout: Duration,
    /// Upper bound on one binary frame's payload; oversized frames close the
    /// connection with a protocol error.
    pub max_frame_len: usize,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            read_timeout: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(30),
            max_frame_len: 1 << 16,
        }
    }
}

impl ConnConfig {
    /// Idle read-timeout ticks after which a connection is evicted.
    pub fn idle_ticks(&self) -> u64 {
        let read = self.read_timeout.as_millis().max(1);
        (self.idle_timeout.as_millis() / read).max(1) as u64
    }
}

/// Client-side reconnect policy: how many times to retry a failed connect
/// and the (linear) backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Connect attempts before giving up (total attempts = 1 + retries).
    pub max_retries: u32,
    /// Sleep between attempt `n` and `n + 1` is `backoff * n`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP address the ingest listener binds (`:0` for ephemeral).
    pub ingest_addr: String,
    /// TCP address the HTTP control/metrics listener binds.
    pub http_addr: String,
    /// The shared disorder-control strategy.
    pub strategy: StrategySpec,
    /// Bound on the ingest queue between socket readers and the session
    /// core. A full queue blocks readers, which stalls the TCP receive
    /// window: backpressure instead of unbounded memory.
    pub queue_capacity: usize,
    /// Per-connection transport policy.
    pub conn: ConnConfig,
    /// Ring capacity of the pipeline span recorders backing `GET /trace`
    /// (`0` disables span tracing entirely — the zero-cost path).
    pub span_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            ingest_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            strategy: StrategySpec::Fixed(500),
            queue_capacity: 4096,
            conn: ConnConfig::default(),
            span_capacity: quill_telemetry::span::DEFAULT_SPAN_CAPACITY,
        }
    }
}

/// Parse one aggregate kind name from the query DSL.
fn parse_agg_kind(s: &str) -> ServeResult<AggregateKind> {
    Ok(match s {
        "count" => AggregateKind::Count,
        "sum" => AggregateKind::Sum,
        "mean" => AggregateKind::Mean,
        "min" => AggregateKind::Min,
        "max" => AggregateKind::Max,
        "stddev" => AggregateKind::StdDev,
        "variance" => AggregateKind::Variance,
        "median" => AggregateKind::Median,
        "distinct" => AggregateKind::DistinctCount,
        "first" => AggregateKind::First,
        "last" => AggregateKind::Last,
        q if q.starts_with('q') => {
            let p: f64 = q[1..]
                .parse()
                .map_err(|_| ServeError::Config(format!("bad quantile `{q}`")))?;
            AggregateKind::Quantile(p)
        }
        other => {
            return Err(ServeError::Config(format!(
                "unknown aggregate `{other}` (count, sum, mean, min, max, stddev, variance, \
                 median, distinct, first, last, q<p>)"
            )))
        }
    })
}

/// Parse the compact query DSL used by `POST /queries` bodies and the
/// `--query` CLI flag:
///
/// ```text
/// <window>;<aggregates>[;key=<field>][;completeness=<q>][;capacity=<n>][;slo=<lat>]
/// window     = tumbling:<len> | sliding:<len>:<slide>
/// aggregates = <kind>:<field>:<name> [, ...]
/// ```
///
/// Example: `tumbling:1000;sum:0:bytes,mean:1:lat;key=2;completeness=0.99`.
///
/// # Errors
/// [`ServeError::Config`] describing the offending clause.
pub fn parse_query(dsl: &str) -> ServeResult<(QuerySpec, QueryConfig)> {
    let mut window = None;
    let mut aggregates = Vec::new();
    let mut key_field = None;
    let mut cfg = QueryConfig::default();
    for clause in dsl.split(';').map(str::trim) {
        if clause.is_empty() {
            continue;
        }
        if let Some(rest) = clause.strip_prefix("tumbling:") {
            let len: u64 = rest
                .parse()
                .map_err(|_| ServeError::Config(format!("bad tumbling length `{rest}`")))?;
            window = Some(WindowSpec::tumbling(len));
        } else if let Some(rest) = clause.strip_prefix("sliding:") {
            let (len, slide) = rest
                .split_once(':')
                .ok_or_else(|| ServeError::Config("sliding needs <len>:<slide>".into()))?;
            let len: u64 = len
                .parse()
                .map_err(|_| ServeError::Config(format!("bad sliding length `{len}`")))?;
            let slide: u64 = slide
                .parse()
                .map_err(|_| ServeError::Config(format!("bad slide `{slide}`")))?;
            window = Some(WindowSpec::sliding(len, slide));
        } else if let Some(rest) = clause.strip_prefix("key=") {
            key_field = Some(
                rest.parse()
                    .map_err(|_| ServeError::Config(format!("bad key field `{rest}`")))?,
            );
        } else if let Some(rest) = clause.strip_prefix("completeness=") {
            let q: f64 = rest
                .parse()
                .map_err(|_| ServeError::Config(format!("bad completeness `{rest}`")))?;
            cfg = cfg.with_required_completeness(q);
        } else if let Some(rest) = clause.strip_prefix("capacity=") {
            let n: usize = rest
                .parse()
                .map_err(|_| ServeError::Config(format!("bad capacity `{rest}`")))?;
            cfg = cfg.with_result_capacity(n);
        } else if let Some(rest) = clause.strip_prefix("slo=") {
            let n: u64 = rest
                .parse()
                .map_err(|_| ServeError::Config(format!("bad latency SLO `{rest}`")))?;
            cfg = cfg.with_latency_slo(n);
        } else if clause.contains(':') {
            // The aggregate list clause: comma-separated kind:field:name.
            for agg in clause.split(',').map(str::trim) {
                let mut it = agg.splitn(3, ':');
                let (kind, field, name) = (it.next(), it.next(), it.next());
                let (Some(kind), Some(field), Some(name)) = (kind, field, name) else {
                    return Err(ServeError::Config(format!(
                        "aggregate `{agg}` must be <kind>:<field>:<name>"
                    )));
                };
                let field: usize = field
                    .parse()
                    .map_err(|_| ServeError::Config(format!("bad field index `{field}`")))?;
                aggregates.push(AggregateSpec::new(parse_agg_kind(kind)?, field, name));
            }
        } else {
            return Err(ServeError::Config(format!(
                "unrecognised clause `{clause}`"
            )));
        }
    }
    let window = window.ok_or_else(|| ServeError::Config("query needs a window clause".into()))?;
    if aggregates.is_empty() {
        return Err(ServeError::Config(
            "query needs at least one aggregate".into(),
        ));
    }
    Ok((QuerySpec::new(window, aggregates, key_field), cfg))
}

/// Render a query spec back into the DSL (round-trips through
/// [`parse_query`] for every kind the DSL can name).
pub fn query_to_dsl(spec: &QuerySpec, required_completeness: Option<f64>) -> String {
    let mut out = match spec.window {
        WindowSpec::Tumbling { length } => format!("tumbling:{}", length.raw()),
        WindowSpec::Sliding { length, slide } => {
            format!("sliding:{}:{}", length.raw(), slide.raw())
        }
    };
    out.push(';');
    let aggs: Vec<String> = spec
        .aggregates
        .iter()
        .map(|a| format!("{}:{}:{}", a.kind, a.field, a.name))
        .collect();
    out.push_str(&aggs.join(","));
    if let Some(k) = spec.key_field {
        out.push_str(&format!(";key={k}"));
    }
    if let Some(q) = required_completeness {
        out.push_str(&format!(";completeness={q}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_specs_parse_and_build() {
        for (s, name_part) in [
            ("dropall", "drop"),
            ("fixed:100", "fixed"),
            ("mp", "mp"),
            ("mp:500", "mp"),
            ("aq:0.95", "aq"),
            ("punct:0:2", "punct"),
            ("punct:0:2:50", "punct"),
        ] {
            let spec = StrategySpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            let strategy = spec.build();
            assert!(
                strategy.name().contains(name_part),
                "{s} built {}",
                strategy.name()
            );
        }
        assert!(StrategySpec::parse("aq:1.5").is_err());
        assert!(StrategySpec::parse("fixed").is_err());
        assert!(StrategySpec::parse("nope:1").is_err());
    }

    #[test]
    fn query_dsl_round_trips() {
        let (spec, cfg) =
            parse_query("tumbling:1000;sum:0:bytes,mean:1:lat;key=2;completeness=0.99").unwrap();
        assert_eq!(spec.aggregates.len(), 2);
        assert_eq!(spec.key_field, Some(2));
        assert_eq!(cfg.required_completeness, Some(0.99));
        let dsl = query_to_dsl(&spec, cfg.required_completeness);
        let (spec2, cfg2) = parse_query(&dsl).unwrap();
        assert_eq!(dsl, query_to_dsl(&spec2, cfg2.required_completeness));
        assert_eq!(cfg2.required_completeness, Some(0.99));
    }

    #[test]
    fn sliding_and_capacity_clauses_parse() {
        let (spec, cfg) = parse_query("sliding:200:50;max:3:peak;capacity=16").unwrap();
        assert!(matches!(spec.window, WindowSpec::Sliding { .. }));
        assert_eq!(cfg.result_capacity, 16);
    }

    #[test]
    fn slo_clause_parses_into_query_config() {
        let (_, cfg) = parse_query("tumbling:100;sum:0:s;slo=250").unwrap();
        assert_eq!(cfg.latency_slo, Some(250));
        assert!(parse_query("tumbling:100;sum:0:s;slo=fast").is_err());
    }

    #[test]
    fn malformed_queries_are_refused() {
        assert!(parse_query("").is_err(), "no window");
        assert!(parse_query("tumbling:100").is_err(), "no aggregates");
        assert!(parse_query("tumbling:x;sum:0:s").is_err());
        assert!(parse_query("tumbling:100;sum:0").is_err(), "agg arity");
        assert!(parse_query("tumbling:100;warp:0:s").is_err(), "agg kind");
        assert!(parse_query("bogus;sum:0:s").is_err());
    }

    #[test]
    fn idle_ticks_derive_from_timeouts() {
        let conn = ConnConfig {
            read_timeout: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(1),
            max_frame_len: 1024,
        };
        assert_eq!(conn.idle_ticks(), 20);
    }
}
