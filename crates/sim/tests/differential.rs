//! Differential soak: every strategy/executor pair vs. the naive oracle.
//!
//! Runs `QUILL_SIM_CASES` seeds (default 8; CI runs 64) through the full
//! [`quill_sim::harness::check_case`] battery. Each seed expands into one
//! case per strategy family over a shared adversarially-mutated stream. On
//! the first mismatch the case is shrunk, written to `results/failures/`,
//! and the test fails with the reproducer path — replay it with
//! `cargo run -p quill-bench --bin quill-repro -- <path>`.

use std::path::PathBuf;

use quill_sim::harness::{run_seed, CaseStats};

fn failures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
        .join("failures")
}

#[test]
fn every_strategy_executor_pair_matches_the_oracle() {
    let seeds: u64 = std::env::var("QUILL_SIM_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let dir = failures_dir();
    let mut total = CaseStats::default();
    for seed in 0..seeds {
        match run_seed(seed, &dir) {
            Ok(stats) => total.absorb(stats),
            Err((path, mismatch)) => panic!(
                "seed {seed} diverged from the oracle: {mismatch}\n\
                 reproducer written to {}\n\
                 replay: cargo run -p quill-bench --bin quill-repro -- {}",
                path.display(),
                path.display()
            ),
        }
    }
    assert!(
        total.windows_checked > 0,
        "soak ran {seeds} seeds but compared no windows"
    );
    eprintln!(
        "quill-sim: {seeds} seeds, {} executions, {} windows checked, zero mismatches",
        total.executions, total.windows_checked
    );
}
