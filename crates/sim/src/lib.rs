//! # quill-sim
//!
//! Deterministic simulation harness: differential and metamorphic testing of
//! every strategy/executor pair against a naive full-sort reference oracle.
//!
//! The harness closes the loop the individual crates leave open: each crate
//! tests its own layer, but nothing proves that an arbitrary query, run
//! through an arbitrary disorder-control strategy, on an arbitrary executor
//! configuration, over an adversarially mutated stream, produces exactly the
//! results (and exactly the quality report) that the paper's semantics
//! prescribe. `quill-sim` does, case by generated case:
//!
//! * [`spec`] — seeded random [`spec::SimCase`] generation: query shapes
//!   covering all aggregate kinds, every strategy family, and streams
//!   perturbed by the `quill_gen::mutate` adversarial mutators;
//! * [`oracle`] — an independent naive oracle ([`oracle::naive_oracle`]) that
//!   fully sorts the stream and recomputes every window from first
//!   principles, sharing no code with the engine's incremental aggregates;
//! * [`harness`] — the differential battery ([`harness::check_case`]):
//!   staging invariants, sequential-vs-oracle comparison, shard-count and
//!   batch-size invariance sweeps, scheduler independence, telemetry
//!   reconciliation, reported-quality agreement, and permutation invariance
//!   within the disorder bound; on failure the case is greedily shrunk and
//!   written as a self-contained reproducer;
//! * [`repro`] — the text reproducer format read back by the `quill-repro`
//!   binary in `quill-bench`;
//! * [`support`] — the shared test-support helpers (stream builders, query
//!   builders, the canonical strategy roster) re-exported to the integration
//!   test package so they exist in exactly one place.
//!
//! Everything is seeded; a failing seed replays bit-for-bit. The crate
//! deliberately constructs no entropy of its own — the lint rule
//! `no-nondeterminism` enforces that for every file under `crates/sim`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod oracle;
pub mod repro;
pub mod spec;
pub mod support;

pub use harness::{check_case, run_seed, CaseStats, Mismatch};
pub use oracle::{naive_oracle, NaiveWindow};
pub use spec::{sample_suite, SimCase, StrategySpec};
