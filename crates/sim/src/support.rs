//! Shared test-support helpers: stream builders, query builders, and the
//! canonical strategy roster used by both the simulation harness and the
//! workspace integration tests (which re-export this module instead of
//! keeping per-file copies).

use quill_core::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A controlled disordered stream: events every `period`, uniform delays in
/// `[0, max_delay]`, payload = f64(ts).
pub fn uniform_disordered(n: u64, period: u64, max_delay: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals: Vec<(u64, u64)> = (0..n)
        .map(|i| {
            let ts = i * period;
            (ts + rng.gen_range(0..=max_delay), ts)
        })
        .collect();
    arrivals.sort();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(seq, (_, ts))| Event::new(ts, seq as u64, Row::new([Value::Float(ts as f64)])))
        .collect()
}

/// The standard test query: global mean over tumbling windows.
pub fn mean_query(window: u64) -> QuerySpec {
    QuerySpec::new(
        WindowSpec::tumbling(window),
        vec![AggregateSpec::new(AggregateKind::Mean, 0, "mean")],
        None,
    )
}

/// Multi-aggregate query exercising constant-space and order-statistic
/// aggregates together.
pub fn rich_query(window: u64) -> QuerySpec {
    QuerySpec::new(
        WindowSpec::sliding(window, window / 2),
        vec![
            AggregateSpec::new(AggregateKind::Count, 0, "n"),
            AggregateSpec::new(AggregateKind::Sum, 0, "sum"),
            AggregateSpec::new(AggregateKind::Median, 0, "median"),
            AggregateSpec::new(AggregateKind::Quantile(0.9), 0, "p90"),
            AggregateSpec::new(AggregateKind::Min, 0, "min"),
            AggregateSpec::new(AggregateKind::Max, 0, "max"),
        ],
        None,
    )
}

/// One representative of every strategy family, with both a tight and a
/// loose parameterization where the family has a knob.
pub fn all_strategies() -> Vec<Box<dyn DisorderControl>> {
    vec![
        Box::new(DropAll::new()),
        Box::new(FixedKSlack::new(50u64)),
        Box::new(FixedKSlack::new(2_000u64)),
        Box::new(MpKSlack::new()),
        Box::new(MpKSlack::bounded(500u64)),
        Box::new(AqKSlack::for_completeness(0.9)),
        Box::new(AqKSlack::new(AqConfig::max_rel_error(0.05, 0))),
        Box::new(OracleBuffer::new()),
    ]
}

/// Drive a strategy over events, collecting its raw element output.
pub fn drive(s: &mut dyn DisorderControl, events: &[Event]) -> Vec<StreamElement> {
    let mut out = Vec::new();
    for e in events {
        s.on_event(e.clone(), &mut out);
    }
    s.finish(&mut out);
    out
}

/// Fraction of tuples released on time (ahead of the buffer watermark) by
/// the staging strategy of a finished run.
pub fn tuple_completeness(out: &RunOutput) -> f64 {
    let total = out.buffer.released + out.buffer.late_passed;
    1.0 - out.buffer.late_passed as f64 / total.max(1) as f64
}
