//! Self-contained failure reproducers.
//!
//! When the harness finds a mismatch it writes the (shrunk) case to a text
//! file under `results/failures/`, replayable by the `quill-repro` binary in
//! `quill-bench`. The format is line-oriented and hand-rolled, following the
//! same conventions as `quill_gen::trace` (no serialization-format crate is
//! in the approved dependency set):
//!
//! ```text
//! quill-repro v1
//! seed: 42
//! check: oracle-values
//! exec: sequential
//! detail: window (0, 100) aggregate 0 ...
//! window: sliding 100 30
//! aggregates: sum@1,q:0.9@1
//! key_field: 0
//! strategy: fixedk:50
//! events:
//! <seq>\t<ts>\t<value>\t<value>...
//! ```
//!
//! Values are type-tagged (`i:`, `f:`, `s:`, `b:`, or the bare `\N` null
//! token) so an event line is self-describing; strings escape tabs,
//! newlines and backslashes exactly like the trace format. Floats print via
//! `{:?}` for round-trip precision.

use std::path::{Path, PathBuf};

use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Event, Row, Value, WindowSpec};

use crate::harness::Mismatch;
use crate::spec::{SimCase, StrategySpec};

const MAGIC: &str = "quill-repro v1";
const NULL_TOKEN: &str = "\\N";

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => NULL_TOKEN.to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{f:?}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

fn decode_value(tok: &str) -> Result<Value, String> {
    if tok == NULL_TOKEN {
        return Ok(Value::Null);
    }
    let (tag, body) = tok
        .split_once(':')
        .ok_or_else(|| format!("untagged value `{tok}`"))?;
    Ok(match tag {
        "i" => Value::Int(body.parse().map_err(|e| format!("bad int `{body}`: {e}"))?),
        "f" => Value::Float(
            body.parse()
                .map_err(|e| format!("bad float `{body}`: {e}"))?,
        ),
        "b" => Value::Bool(
            body.parse()
                .map_err(|e| format!("bad bool `{body}`: {e}"))?,
        ),
        "s" => Value::str(unescape(body)),
        other => return Err(format!("unknown value tag `{other}`")),
    })
}

fn encode_kind(kind: &AggregateKind) -> String {
    match kind {
        AggregateKind::Count => "count".into(),
        AggregateKind::Sum => "sum".into(),
        AggregateKind::Mean => "mean".into(),
        AggregateKind::Min => "min".into(),
        AggregateKind::Max => "max".into(),
        AggregateKind::StdDev => "stddev".into(),
        AggregateKind::Variance => "variance".into(),
        AggregateKind::Median => "median".into(),
        AggregateKind::Quantile(p) => format!("q:{p:?}"),
        AggregateKind::DistinctCount => "distinct".into(),
        AggregateKind::First => "first".into(),
        AggregateKind::Last => "last".into(),
        AggregateKind::ArgMin(by) => format!("argmin:{by}"),
        AggregateKind::ArgMax(by) => format!("argmax:{by}"),
    }
}

fn decode_kind(s: &str) -> Result<AggregateKind, String> {
    let (head, body) = match s.split_once(':') {
        Some((h, b)) => (h, Some(b)),
        None => (s, None),
    };
    let need = |what: &str| body.ok_or_else(|| format!("aggregate {head}: missing {what}"));
    Ok(match head {
        "count" => AggregateKind::Count,
        "sum" => AggregateKind::Sum,
        "mean" => AggregateKind::Mean,
        "min" => AggregateKind::Min,
        "max" => AggregateKind::Max,
        "stddev" => AggregateKind::StdDev,
        "variance" => AggregateKind::Variance,
        "median" => AggregateKind::Median,
        "q" => AggregateKind::Quantile(
            need("quantile")?
                .parse()
                .map_err(|e| format!("bad quantile: {e}"))?,
        ),
        "distinct" => AggregateKind::DistinctCount,
        "first" => AggregateKind::First,
        "last" => AggregateKind::Last,
        "argmin" => AggregateKind::ArgMin(
            need("by-field")?
                .parse()
                .map_err(|e| format!("bad argmin field: {e}"))?,
        ),
        "argmax" => AggregateKind::ArgMax(
            need("by-field")?
                .parse()
                .map_err(|e| format!("bad argmax field: {e}"))?,
        ),
        other => return Err(format!("unknown aggregate kind `{other}`")),
    })
}

/// Serialize a case (and the mismatch that condemned it) to the v1 text
/// reproducer format.
pub fn encode_case(case: &SimCase, mismatch: &Mismatch) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("seed: {}\n", case.seed));
    out.push_str(&format!("check: {}\n", mismatch.check));
    out.push_str(&format!("exec: {}\n", mismatch.exec));
    out.push_str(&format!("detail: {}\n", escape(&mismatch.detail)));
    match case.window {
        WindowSpec::Tumbling { length } => {
            out.push_str(&format!("window: tumbling {}\n", length.raw()));
        }
        WindowSpec::Sliding { length, slide } => {
            out.push_str(&format!(
                "window: sliding {} {}\n",
                length.raw(),
                slide.raw()
            ));
        }
    }
    let aggs: Vec<String> = case
        .aggregates
        .iter()
        .map(|a| format!("{}@{}", encode_kind(&a.kind), a.field))
        .collect();
    out.push_str(&format!("aggregates: {}\n", aggs.join(",")));
    match case.key_field {
        Some(f) => out.push_str(&format!("key_field: {f}\n")),
        None => out.push_str("key_field: none\n"),
    }
    out.push_str(&format!("strategy: {}\n", case.strategy.encode()));
    out.push_str("events:\n");
    for e in &case.events {
        out.push_str(&e.seq.to_string());
        out.push('\t');
        out.push_str(&e.ts.raw().to_string());
        for v in e.row.values() {
            out.push('\t');
            out.push_str(&encode_value(v));
        }
        out.push('\n');
    }
    out
}

/// Parse the reproducer format back into a replayable case.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn decode_case(text: &str) -> Result<SimCase, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => return Err(format!("bad magic: {other:?}")),
    }
    let mut header = |name: &str| -> Result<String, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing `{name}:` line"))?;
        line.strip_prefix(&format!("{name}: "))
            .map(str::to_string)
            .ok_or_else(|| format!("expected `{name}: `, got `{line}`"))
    };
    let seed: u64 = header("seed")?
        .parse()
        .map_err(|e| format!("bad seed: {e}"))?;
    let _check = header("check")?;
    let _exec = header("exec")?;
    let _detail = header("detail")?;
    let window_line = header("window")?;
    let window = {
        let parts: Vec<&str> = window_line.split_whitespace().collect();
        match parts.as_slice() {
            ["tumbling", len] => WindowSpec::tumbling(
                len.parse::<u64>()
                    .map_err(|e| format!("bad window length: {e}"))?,
            ),
            ["sliding", len, slide] => WindowSpec::sliding(
                len.parse::<u64>()
                    .map_err(|e| format!("bad window length: {e}"))?,
                slide
                    .parse::<u64>()
                    .map_err(|e| format!("bad window slide: {e}"))?,
            ),
            other => return Err(format!("bad window spec {other:?}")),
        }
    };
    let aggregates: Vec<AggregateSpec> = header("aggregates")?
        .split(',')
        .filter(|s| !s.is_empty())
        .enumerate()
        .map(|(i, part)| {
            let (kind, field) = part
                .rsplit_once('@')
                .ok_or_else(|| format!("aggregate `{part}`: missing @field"))?;
            Ok(AggregateSpec::new(
                decode_kind(kind)?,
                field
                    .parse()
                    .map_err(|e| format!("bad aggregate field: {e}"))?,
                format!("a{i}"),
            ))
        })
        .collect::<Result<_, String>>()?;
    if aggregates.is_empty() {
        return Err("no aggregates".into());
    }
    let key_field = match header("key_field")?.as_str() {
        "none" => None,
        f => Some(f.parse().map_err(|e| format!("bad key_field: {e}"))?),
    };
    let strategy = StrategySpec::parse(&header("strategy")?)?;
    match lines.next() {
        Some("events:") => {}
        other => return Err(format!("expected `events:`, got {other:?}")),
    }
    let mut events = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split('\t');
        let bad = |what: String| format!("event line {}: {what}", lineno + 1);
        let seq: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad seq".into()))?;
        let ts: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad ts".into()))?;
        let vals: Vec<Value> = toks
            .map(|t| decode_value(t).map_err(&bad))
            .collect::<Result<_, String>>()?;
        events.push(Event::new(ts, seq, Row::new(vals)));
    }
    if events.is_empty() {
        return Err("no events".into());
    }
    Ok(SimCase {
        seed,
        window,
        aggregates,
        key_field,
        strategy,
        events,
    })
}

/// Write a reproducer under `dir`, creating it as needed. Returns the path.
///
/// File writes here back a failing test; an unwritable failures directory is
/// itself a configuration failure worth stopping for, hence the panics.
pub fn write_reproducer(dir: &Path, case: &SimCase, mismatch: &Mismatch) -> PathBuf {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create failures dir {}: {e}", dir.display()));
    let head = case.strategy.encode();
    let head = head.split(':').next().unwrap_or("unknown");
    let path = dir.join(format!("case-{}-{head}.repro", case.seed));
    std::fs::write(&path, encode_case(case, mismatch))
        .unwrap_or_else(|e| panic!("cannot write reproducer {}: {e}", path.display()));
    path
}

/// Load a reproducer file.
///
/// # Errors
/// Returns a description of the I/O or format problem.
pub fn load_case(path: &Path) -> Result<SimCase, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    decode_case(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::sample_suite;

    fn dummy_mismatch() -> Mismatch {
        Mismatch {
            check: "oracle-values".into(),
            exec: "sequential".into(),
            detail: "window (0, 100) key 3:\tengine 1.0 != oracle 2.0".into(),
        }
    }

    #[test]
    fn cases_round_trip_through_the_text_format() {
        for case in sample_suite(11) {
            let text = encode_case(&case, &dummy_mismatch());
            let back = decode_case(&text).expect("decode");
            assert_eq!(back.seed, case.seed);
            assert_eq!(back.window, case.window);
            assert_eq!(back.key_field, case.key_field);
            assert_eq!(back.strategy, case.strategy);
            assert_eq!(back.events.len(), case.events.len());
            for (a, b) in case.events.iter().zip(&back.events) {
                assert_eq!((a.ts, a.seq), (b.ts, b.seq));
                assert_eq!(a.row.values(), b.row.values());
            }
            for (a, b) in case.aggregates.iter().zip(&back.aggregates) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.field, b.field);
            }
        }
    }

    #[test]
    fn special_floats_and_strings_round_trip() {
        let vals = vec![
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(-0.0),
            Value::str("tab\tnewline\nback\\slash"),
            Value::Null,
            Value::Bool(true),
        ];
        for v in vals {
            let got = decode_value(&encode_value(&v)).expect("decode");
            match (&v, &got) {
                (Value::Float(a), Value::Float(b)) => {
                    assert!(a.to_bits() == b.to_bits(), "{a:?} vs {b:?}");
                }
                _ => assert_eq!(v, got),
            }
        }
    }

    #[test]
    fn truncated_files_are_rejected_with_context() {
        assert!(decode_case("quill-repro v1\nseed: 1\n").is_err());
        assert!(decode_case("not a repro").is_err());
    }

    #[test]
    fn write_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("quill-sim-repro-test");
        let case = sample_suite(5).remove(0);
        let path = write_reproducer(&dir, &case, &dummy_mismatch());
        let back = load_case(&path).expect("load");
        assert_eq!(back.events.len(), case.events.len());
        std::fs::remove_file(path).ok();
    }
}
