//! Naive full-sort reference oracle.
//!
//! Recomputes every window's exact result from first principles: fully sort
//! the stream by `(ts, seq)`, assign each event to its windows with plain
//! arithmetic, and evaluate each aggregate with the textbook formula
//! (two-pass variance, sorted-vector quantiles, linear scans for extremes).
//! Nothing here shares code with the engine's incremental aggregates or its
//! window operator — that independence is the point: a bug in the engine's
//! fold/merge/pane machinery cannot also hide in the oracle.

use std::collections::{BTreeMap, BTreeSet};

use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Event, Key, Value, WindowSpec};

/// Ground truth for one `(window, key)` group.
#[derive(Debug, Clone)]
pub struct NaiveWindow {
    /// Window start (inclusive).
    pub start: u64,
    /// Window end (exclusive).
    pub end: u64,
    /// Grouping key (`Null` for global aggregation).
    pub key: Value,
    /// Number of events in the group.
    pub count: u64,
    /// One exact output per [`AggregateSpec`], in spec order.
    pub aggregates: Vec<Value>,
    /// True when the group contains two events with equal timestamps. The
    /// engine breaks `First`/`Last` ties by insertion order, which under
    /// late passes is arrival order rather than `(ts, seq)` order, so those
    /// two aggregates are only deterministic for tie-free groups.
    pub has_ts_ties: bool,
}

/// Exact per-window results for `events` under `window`/`aggs`/`key_field`,
/// sorted by `(end, start, key)`.
pub fn naive_oracle(
    events: &[Event],
    window: WindowSpec,
    aggs: &[AggregateSpec],
    key_field: Option<usize>,
) -> Vec<NaiveWindow> {
    let (length, slide) = match window {
        WindowSpec::Tumbling { length } => (length.raw(), length.raw()),
        WindowSpec::Sliding { length, slide } => (length.raw(), slide.raw()),
    };
    assert!(length > 0 && slide > 0 && slide <= length, "invalid window");

    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.ts.raw(), e.seq));

    // Group events by (end, start, key); each group's vec stays in (ts, seq)
    // order because we iterate the sorted stream.
    let mut groups: BTreeMap<(u64, u64, Key), Vec<&Event>> = BTreeMap::new();
    for e in &sorted {
        let key = key_field.map_or(Value::Null, |f| e.row.get(f).clone());
        let ts = e.ts.raw();
        let mut start = (ts / slide) * slide;
        loop {
            groups
                .entry((start + length, start, Key(key.clone())))
                .or_default()
                .push(e);
            if start < slide {
                break;
            }
            start -= slide;
            if ts >= start + length {
                break;
            }
        }
    }

    groups
        .into_iter()
        .map(|((end, start, key), evs)| {
            let has_ts_ties = evs.windows(2).any(|p| p[0].ts == p[1].ts);
            let aggregates = aggs.iter().map(|a| compute(a, &evs)).collect();
            NaiveWindow {
                start,
                end,
                key: key.0,
                count: evs.len() as u64,
                aggregates,
                has_ts_ties,
            }
        })
        .collect()
}

/// Non-null f64 readings of `field` across the group, in (ts, seq) order.
fn numbers(evs: &[&Event], field: usize) -> Vec<f64> {
    evs.iter()
        .filter_map(|e| e.row.get(field).as_f64())
        .collect()
}

fn compute(spec: &AggregateSpec, evs: &[&Event]) -> Value {
    let field = spec.field;
    match spec.kind {
        AggregateKind::Count => {
            Value::Int(evs.iter().filter(|e| !e.row.get(field).is_null()).count() as i64)
        }
        AggregateKind::Sum => {
            let xs = numbers(evs, field);
            if xs.is_empty() {
                Value::Null
            } else {
                Value::Float(xs.iter().sum())
            }
        }
        AggregateKind::Mean => {
            let xs = numbers(evs, field);
            if xs.is_empty() {
                Value::Null
            } else {
                Value::Float(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        }
        AggregateKind::Min => extreme(evs, field, std::cmp::Ordering::Less),
        AggregateKind::Max => extreme(evs, field, std::cmp::Ordering::Greater),
        AggregateKind::Variance => variance(evs, field).map_or(Value::Null, Value::Float),
        AggregateKind::StdDev => {
            variance(evs, field).map_or(Value::Null, |v| Value::Float(v.sqrt()))
        }
        AggregateKind::Median => quantile(evs, field, 0.5),
        AggregateKind::Quantile(p) => quantile(evs, field, p),
        AggregateKind::DistinctCount => {
            let distinct: BTreeSet<Key> = evs
                .iter()
                .map(|e| e.row.get(field))
                .filter(|v| !v.is_null())
                .map(|v| Key(v.clone()))
                .collect();
            Value::Int(distinct.len() as i64)
        }
        AggregateKind::First => {
            // Earliest event time; (ts, seq) iteration order makes the first
            // non-null hit the engine's earliest-insertion tiebreak only when
            // the group is tie-free (see `NaiveWindow::has_ts_ties`).
            evs.iter()
                .map(|e| e.row.get(field))
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null)
        }
        AggregateKind::Last => evs
            .iter()
            .rev()
            .map(|e| e.row.get(field))
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        AggregateKind::ArgMin(by) => arg_extreme(evs, field, by, std::cmp::Ordering::Less),
        AggregateKind::ArgMax(by) => arg_extreme(evs, field, by, std::cmp::Ordering::Greater),
    }
}

/// Strictly-better extreme under `Value::total_cmp`; ties keep the earlier
/// (ts, seq) occurrence, whose value is equal anyway.
fn extreme(evs: &[&Event], field: usize, better: std::cmp::Ordering) -> Value {
    let mut best: Option<&Value> = None;
    for e in evs {
        let v = e.row.get(field);
        if v.is_null() {
            continue;
        }
        match best {
            Some(b) if v.total_cmp(b) != better => {}
            _ => best = Some(v),
        }
    }
    best.cloned().unwrap_or(Value::Null)
}

/// Two-pass population variance — deliberately not Welford, so a bug in the
/// engine's single-pass update cannot cancel out here.
fn variance(evs: &[&Event], field: usize) -> Option<f64> {
    let xs = numbers(evs, field);
    if xs.is_empty() {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let m2 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    Some((m2 / xs.len() as f64).max(0.0))
}

/// Linear-interpolated quantile over the fully sorted readings, mirroring
/// the engine's rank arithmetic on an independently built vector.
fn quantile(evs: &[&Event], field: usize, p: f64) -> Value {
    let mut xs = numbers(evs, field);
    if xs.is_empty() {
        return Value::Null;
    }
    xs.sort_by(f64::total_cmp);
    if xs.len() == 1 {
        return Value::Float(xs[0]);
    }
    let rank = p.clamp(0.0, 1.0) * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Value::Float(xs[lo] + (xs[hi] - xs[lo]) * frac)
}

/// `ArgMin`/`ArgMax`: strictly-better `by`-value wins; an exactly-equal
/// `by`-value wins only with a strictly earlier event time — the engine's
/// tiebreak, reproduced on the sorted stream.
fn arg_extreme(evs: &[&Event], field: usize, by: usize, better: std::cmp::Ordering) -> Value {
    let mut best: Option<(&Value, u64, &Value)> = None; // (by value, ts, reported value)
    for e in evs {
        let bv = e.row.get(by);
        if bv.is_null() {
            continue;
        }
        let replace = match &best {
            None => true,
            Some((cur, cur_ts, _)) => match bv.total_cmp(cur) {
                o if o == better => true,
                std::cmp::Ordering::Equal => e.ts.raw() < *cur_ts,
                _ => false,
            },
        };
        if replace {
            best = Some((bv, e.ts.raw(), e.row.get(field)));
        }
    }
    best.map_or(Value::Null, |(_, _, v)| v.clone())
}

/// Approximate value equality for comparing engine output against the
/// oracle: exact for ints/strings/bools/nulls, relative tolerance `1e-6`
/// for floats (the engine's single-pass folds and the oracle's two-pass
/// formulas take different round-off paths).
pub fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => floats_close(*x, *y),
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            floats_close(*x, *y as f64)
        }
        _ => a == b,
    }
}

fn floats_close(x: f64, y: f64) -> bool {
    if x == y || (x.is_nan() && y.is_nan()) {
        return true;
    }
    (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0)
}

/// The DESIGN.md §17 tolerance for the window-state backend differential:
/// non-associative float reductions may differ between the FiBA and legacy
/// backends only by combine-nesting round-off, bounded by this relative
/// tolerance. This is the *one* place the rule is encoded; backend
/// comparisons must route through [`backend_values_close`] rather than
/// reintroducing ad-hoc epsilons.
pub const BACKEND_NESTING_REL_TOL: f64 = 1e-9;

/// Whether `kind` is a non-associative float reduction whose value may
/// legitimately depend on the combine tree shape (and therefore on the
/// window state backend). Order statistics, extremes, edges and counts
/// only *select* or count inputs, so they must be bit-exact.
pub fn nesting_sensitive(kind: &AggregateKind) -> bool {
    matches!(
        kind,
        AggregateKind::Sum | AggregateKind::Mean | AggregateKind::Variance | AggregateKind::StdDev
    )
}

/// Value comparison for the FiBA-vs-legacy backend differential: exact
/// equality unless [`nesting_sensitive`], in which case floats are gated on
/// [`BACKEND_NESTING_REL_TOL`] (NaN compares equal to NaN).
pub fn backend_values_close(kind: &AggregateKind, a: &Value, b: &Value) -> bool {
    if !nesting_sensitive(kind) {
        return a == b;
    }
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            (x.is_nan() && y.is_nan())
                || x == y
                || (x - y).abs() <= BACKEND_NESTING_REL_TOL * x.abs().max(y.abs())
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::Row;

    fn ev(ts: u64, seq: u64, vals: Vec<Value>) -> Event {
        Event::new(ts, seq, Row::new(vals))
    }

    #[test]
    fn tumbling_groups_and_counts() {
        let events = vec![
            ev(5, 0, vec![Value::Float(1.0)]),
            ev(15, 1, vec![Value::Float(2.0)]),
            ev(7, 2, vec![Value::Float(3.0)]),
        ];
        let aggs = vec![AggregateSpec::new(AggregateKind::Sum, 0, "s")];
        let out = naive_oracle(&events, WindowSpec::tumbling(10u64), &aggs, None);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].count, 2);
        assert_eq!(out[0].aggregates[0], Value::Float(4.0));
        assert_eq!(out[1].aggregates[0], Value::Float(2.0));
    }

    #[test]
    fn sliding_assignment_matches_engine_window_math() {
        // length 30, slide 10: ts=25 belongs to starts 0, 10, 20.
        let events = vec![ev(25, 0, vec![Value::Float(1.0)])];
        let aggs = vec![AggregateSpec::new(AggregateKind::Count, 0, "n")];
        let out = naive_oracle(&events, WindowSpec::sliding(30u64, 10u64), &aggs, None);
        let starts: Vec<u64> = out.iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![0, 10, 20]);
    }

    #[test]
    fn misaligned_sliding_never_underflows() {
        let events = vec![ev(3, 0, vec![Value::Float(1.0)])];
        let aggs = vec![AggregateSpec::new(AggregateKind::Count, 0, "n")];
        let out = naive_oracle(&events, WindowSpec::sliding(25u64, 10u64), &aggs, None);
        let starts: Vec<u64> = out.iter().map(|w| w.start).collect();
        assert_eq!(starts, vec![0]);
    }

    #[test]
    fn keyed_grouping_splits_by_key_value() {
        let events = vec![
            ev(1, 0, vec![Value::Int(1), Value::Float(10.0)]),
            ev(2, 1, vec![Value::Int(2), Value::Float(20.0)]),
            ev(3, 2, vec![Value::Int(1), Value::Float(30.0)]),
        ];
        let aggs = vec![AggregateSpec::new(AggregateKind::Sum, 1, "s")];
        let out = naive_oracle(&events, WindowSpec::tumbling(10u64), &aggs, Some(0));
        assert_eq!(out.len(), 2);
        let k1 = out.iter().find(|w| w.key == Value::Int(1)).unwrap();
        assert_eq!(k1.aggregates[0], Value::Float(40.0));
    }

    #[test]
    fn ties_are_flagged() {
        let events = vec![
            ev(5, 0, vec![Value::Float(1.0)]),
            ev(5, 1, vec![Value::Float(2.0)]),
        ];
        let aggs = vec![AggregateSpec::new(AggregateKind::First, 0, "f")];
        let out = naive_oracle(&events, WindowSpec::tumbling(10u64), &aggs, None);
        assert!(out[0].has_ts_ties);
    }

    #[test]
    fn argmax_reports_value_of_extreme_row() {
        let events = vec![
            ev(1, 0, vec![Value::Float(10.0), Value::Float(1.0)]),
            ev(2, 1, vec![Value::Float(20.0), Value::Float(5.0)]),
            ev(3, 2, vec![Value::Float(30.0), Value::Float(3.0)]),
        ];
        let aggs = vec![AggregateSpec::new(AggregateKind::ArgMax(1), 0, "am")];
        let out = naive_oracle(&events, WindowSpec::tumbling(10u64), &aggs, None);
        assert_eq!(out[0].aggregates[0], Value::Float(20.0));
    }

    #[test]
    fn backend_tolerance_applies_only_to_nesting_sensitive_kinds() {
        // One ulp apart at magnitude 1e3.
        let x = 1000.0f64;
        let y = f64::from_bits(x.to_bits() + 1);
        assert_ne!(x, y);
        // Sum may differ by round-off under the documented tolerance...
        assert!(backend_values_close(
            &AggregateKind::Sum,
            &Value::Float(x),
            &Value::Float(y)
        ));
        // ...but a selection aggregate must be bit-exact.
        assert!(!backend_values_close(
            &AggregateKind::Median,
            &Value::Float(x),
            &Value::Float(y)
        ));
        assert!(!backend_values_close(
            &AggregateKind::Min,
            &Value::Float(x),
            &Value::Float(y)
        ));
        // The gate is a tolerance, not a blank cheque.
        assert!(!backend_values_close(
            &AggregateKind::Sum,
            &Value::Float(1.0),
            &Value::Float(1.001)
        ));
        // NaN == NaN for sensitive kinds; exact kinds use Value equality.
        assert!(backend_values_close(
            &AggregateKind::Mean,
            &Value::Float(f64::NAN),
            &Value::Float(f64::NAN)
        ));
        assert!(backend_values_close(
            &AggregateKind::Count,
            &Value::Int(7),
            &Value::Int(7)
        ));
        assert!(!backend_values_close(
            &AggregateKind::Count,
            &Value::Int(7),
            &Value::Int(8)
        ));
    }
}
