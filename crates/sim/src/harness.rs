//! The differential battery: everything that must hold for one [`SimCase`].
//!
//! [`check_case`] runs a case through the staging layer, the sequential
//! executor, and a sweep of keyed-parallel configurations, comparing each
//! against the naive full-sort oracle and against each other:
//!
//! 1. **Staging invariants** — the strategy forwards every event exactly
//!    once, watermarks are monotone, and its late accounting matches its own
//!    [`BufferStats`].
//! 2. **Oracle window agreement** — the run reports exactly the oracle's
//!    window set, and any window the engine saw in full (produced count ==
//!    oracle count) carries the oracle's exact aggregate values.
//! 3. **Quality agreement** — the reported per-window completeness, mean,
//!    and missing-window count re-derive exactly from oracle truth counts.
//! 4. **Executor invariance** — sequential, inline-deterministic parallel
//!    (shards × batch sizes), and threaded parallel all produce identical
//!    results, quality reports, and accounting.
//! 5. **Window-state backend differential** — the FiBA backend (the
//!    default) and the legacy per-window/pane backend emit element-identical
//!    results, gated only by the DESIGN.md §17 combine-nesting tolerance on
//!    non-associative float aggregates.
//! 6. **Telemetry reconciliation** — per-shard counters sum to the run's
//!    event accounting.
//! 7. **Strategy-independent laws** (run once per suite, on the Oracle
//!    case): full buffering reproduces the oracle exactly, and execution is
//!    invariant under input permutation once K exceeds the disorder bound.
//!
//! On failure the case is greedily shrunk ([`shrink_case`]) and written as a
//! self-contained reproducer for the `quill-repro` binary.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use quill_core::prelude::*;

use crate::oracle::{backend_values_close, naive_oracle, values_close, NaiveWindow};
use crate::spec::{sample_suite, SimCase, StrategySpec};

/// One confirmed divergence between the engine and the oracle (or between
/// two executor configurations).
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which invariant failed (e.g. `oracle-values`, `parallel-results`).
    pub check: String,
    /// Which execution configuration exposed it (e.g. `parallel-4x7`).
    pub exec: String,
    /// Human-readable specifics: window, key, expected vs. got.
    pub detail: String,
}

impl Mismatch {
    fn new(check: &str, exec: &str, detail: impl Into<String>) -> Mismatch {
        Mismatch {
            check: check.into(),
            exec: exec.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] under {}: {}", self.check, self.exec, self.detail)
    }
}

/// What a passing case cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Full engine executions performed.
    pub executions: u64,
    /// Oracle `(window, key)` groups compared.
    pub windows_checked: u64,
}

impl CaseStats {
    /// Accumulate another case's counts.
    pub fn absorb(&mut self, other: CaseStats) {
        self.executions += other.executions;
        self.windows_checked += other.windows_checked;
    }
}

fn result_sort_key(r: &WindowResult) -> (u64, u64, Key, u64) {
    (
        r.window.end.raw(),
        r.window.start.raw(),
        Key(r.key.clone()),
        r.revision,
    )
}

fn sorted_results(results: &[WindowResult]) -> Vec<WindowResult> {
    let mut v = results.to_vec();
    v.sort_by_key(result_sort_key);
    v
}

fn run(case: &SimCase, opts: &ExecOptions, exec: &str) -> Result<RunOutput, Mismatch> {
    let mut s = case.strategy.build();
    execute(&case.events, s.as_mut(), &case.query(), opts)
        .map_err(|e| Mismatch::new("execute-error", exec, e.to_string()))
}

/// Largest `max_ts_seen - ts` over the arrival order: the stream's actual
/// disorder bound.
fn max_disorder(events: &[Event]) -> u64 {
    let mut max_ts = 0u64;
    let mut d = 0u64;
    for e in events {
        let t = e.ts.raw();
        max_ts = max_ts.max(t);
        d = d.max(max_ts - t);
    }
    d
}

/// Staging-layer invariants, independent of any window operator.
fn check_staging(case: &SimCase) -> Result<(), Mismatch> {
    let mut s = case.strategy.build();
    let out = crate::support::drive(s.as_mut(), &case.events);
    let exec = "staging";

    let mut seqs: Vec<u64> = out
        .iter()
        .filter_map(|e| e.as_event())
        .map(|e| e.seq)
        .collect();
    seqs.sort_unstable();
    let n = case.events.len() as u64;
    if seqs != (0..n).collect::<Vec<u64>>() {
        return Err(Mismatch::new(
            "conservation",
            exec,
            format!(
                "expected every seq in 0..{n} exactly once, got {} events",
                seqs.len()
            ),
        ));
    }

    let mut wm = 0u64;
    let mut late = 0u64;
    for el in &out {
        match el {
            StreamElement::Watermark(t) => {
                if t.raw() < wm {
                    return Err(Mismatch::new(
                        "watermark-regression",
                        exec,
                        format!("watermark went {wm} -> {}", t.raw()),
                    ));
                }
                wm = t.raw();
            }
            StreamElement::Event(e) if e.ts.raw() < wm => late += 1,
            _ => {}
        }
    }
    let stats = s.buffer_stats();
    if stats.late_passed != late {
        return Err(Mismatch::new(
            "late-accounting",
            exec,
            format!(
                "strategy reports {} late passes, output stream shows {late}",
                stats.late_passed
            ),
        ));
    }
    if stats.released + stats.late_passed != n {
        return Err(Mismatch::new(
            "buffer-accounting",
            exec,
            format!(
                "released {} + late {} != {n}",
                stats.released, stats.late_passed
            ),
        ));
    }
    Ok(())
}

/// Produced results vs. oracle truth. Every produced window must exist in
/// the oracle with `count <= truth`; any fully-seen window must carry the
/// oracle's exact values. With `expect_complete`, the run must additionally
/// have produced every oracle window in full.
fn check_against_oracle(
    results: &[WindowResult],
    naive: &[NaiveWindow],
    aggs: &[AggregateSpec],
    expect_complete: bool,
    exec: &str,
) -> Result<u64, Mismatch> {
    let truth: HashMap<(u64, u64, String), &NaiveWindow> = naive
        .iter()
        .map(|w| ((w.end, w.start, w.key.to_string()), w))
        .collect();
    let mut seen = 0u64;
    let mut full = 0u64;
    let mut emitted: HashSet<(u64, u64, String)> = HashSet::new();
    for r in results {
        if r.revision != 0 {
            continue;
        }
        let id = (r.window.end.raw(), r.window.start.raw(), r.key.to_string());
        // Under LatePolicy::Drop a (window, key) pair is final on first
        // emission; a second revision-0 result means the operator re-opened
        // a closed window (e.g. an off-by-one in the close comparison).
        if !emitted.insert(id.clone()) {
            return Err(Mismatch::new(
                "duplicate-emission",
                exec,
                format!("window {id:?} emitted twice at revision 0"),
            ));
        }
        let Some(nw) = truth.get(&id) else {
            return Err(Mismatch::new(
                "phantom-window",
                exec,
                format!("produced window {id:?} the oracle never saw"),
            ));
        };
        seen += 1;
        if r.count > nw.count {
            return Err(Mismatch::new(
                "overcount",
                exec,
                format!(
                    "window {id:?}: produced count {} > true count {}",
                    r.count, nw.count
                ),
            ));
        }
        if r.count < nw.count {
            if expect_complete {
                return Err(Mismatch::new(
                    "undercount",
                    exec,
                    format!(
                        "window {id:?}: produced count {} < true count {}",
                        r.count, nw.count
                    ),
                ));
            }
            continue; // lossy run; quality agreement covers the accounting
        }
        for (i, spec) in aggs.iter().enumerate() {
            if nw.has_ts_ties && matches!(spec.kind, AggregateKind::First | AggregateKind::Last) {
                continue; // insertion-order tiebreak is legitimately order-dependent
            }
            let got = r.aggregates.get(i).cloned().unwrap_or(Value::Null);
            if !values_close(&got, &nw.aggregates[i]) {
                return Err(Mismatch::new(
                    "oracle-values",
                    exec,
                    format!(
                        "window {id:?} aggregate {} ({}): engine {got:?} != oracle {:?}",
                        i, spec.kind, nw.aggregates[i]
                    ),
                ));
            }
        }
        full += 1;
    }
    if expect_complete && (seen as usize != naive.len() || full as usize != naive.len()) {
        return Err(Mismatch::new(
            "missing-windows",
            exec,
            format!(
                "expected all {} oracle windows complete, saw {seen} ({full} complete)",
                naive.len()
            ),
        ));
    }
    Ok(seen)
}

/// The reported [`QualityReport`] must re-derive exactly from oracle truth
/// counts and the run's own produced counts.
fn check_quality_agreement(
    out: &RunOutput,
    naive: &[NaiveWindow],
    exec: &str,
) -> Result<(), Mismatch> {
    if out.quality.windows_total as usize != naive.len() {
        return Err(Mismatch::new(
            "oracle-window-count",
            exec,
            format!(
                "report says {} true windows, naive oracle says {}",
                out.quality.windows_total,
                naive.len()
            ),
        ));
    }
    if out.quality.per_window.len() != naive.len() {
        return Err(Mismatch::new(
            "quality-window-count",
            exec,
            format!(
                "report scores {} windows, oracle has {}",
                out.quality.per_window.len(),
                naive.len()
            ),
        ));
    }
    let mut produced: HashMap<(u64, u64, String), u64> = HashMap::new();
    for r in &out.results {
        if r.revision == 0 {
            produced.insert(
                (r.window.end.raw(), r.window.start.raw(), r.key.to_string()),
                r.count,
            );
        }
    }
    let truth: HashMap<(u64, u64, String), u64> = naive
        .iter()
        .map(|w| ((w.end, w.start, w.key.to_string()), w.count))
        .collect();
    let mut mean = 0.0;
    let mut missing = 0u64;
    for w in &out.quality.per_window {
        let id = (w.window.end.raw(), w.window.start.raw(), w.key.clone());
        let Some(&true_count) = truth.get(&id) else {
            return Err(Mismatch::new(
                "quality-unknown-window",
                exec,
                format!("report scores window {id:?} the oracle never saw"),
            ));
        };
        let expect = match produced.get(&id) {
            Some(&c) => (c as f64 / true_count.max(1) as f64).min(1.0),
            None => 0.0,
        };
        if (w.completeness - expect).abs() > 1e-9 {
            return Err(Mismatch::new(
                "completeness-disagreement",
                exec,
                format!(
                    "window {id:?}: reported completeness {} but truth count {true_count} and produced {:?} imply {expect}",
                    w.completeness,
                    produced.get(&id)
                ),
            ));
        }
        if !produced.contains_key(&id) {
            missing += 1;
        }
        mean += expect;
    }
    mean /= naive.len().max(1) as f64;
    if naive.is_empty() {
        mean = 1.0;
    }
    if (out.quality.mean_completeness - mean).abs() > 1e-9 {
        return Err(Mismatch::new(
            "mean-completeness-disagreement",
            exec,
            format!(
                "reported mean completeness {} vs oracle-derived {mean}",
                out.quality.mean_completeness
            ),
        ));
    }
    if out.quality.windows_missing != missing {
        return Err(Mismatch::new(
            "missing-count-disagreement",
            exec,
            format!(
                "reported {} missing windows, oracle-derived {missing}",
                out.quality.windows_missing
            ),
        ));
    }
    Ok(())
}

/// One parallel run must equal the sequential baseline in results, quality,
/// accounting, and latency.
fn check_parallel_equivalence(
    case: &SimCase,
    seq: &RunOutput,
    seq_sorted: &[WindowResult],
    shards: usize,
    batch: usize,
    deterministic: bool,
    global_staging: bool,
) -> Result<RunOutput, Mismatch> {
    let exec = format!(
        "parallel-{shards}x{batch}{}{}",
        if deterministic {
            "-inline"
        } else {
            "-threaded"
        },
        if global_staging { "-global" } else { "" }
    );
    let cfg = ParallelConfig::new(shards)
        .with_batch_size(batch)
        .with_deterministic(deterministic);
    let par = run(
        case,
        &ExecOptions::parallel(cfg).with_global_staging(global_staging),
        &exec,
    )?;
    if sorted_results(&par.results) != seq_sorted {
        return Err(Mismatch::new(
            "parallel-results",
            &exec,
            format!(
                "result multiset differs from sequential ({} vs {} results)",
                par.results.len(),
                seq.results.len()
            ),
        ));
    }
    if par.quality != seq.quality {
        return Err(Mismatch::new(
            "parallel-quality",
            &exec,
            "quality report differs from sequential".to_string(),
        ));
    }
    let acc = (
        par.window_stats.accepted,
        par.window_stats.late_dropped,
        par.buffer.released,
        par.buffer.late_passed,
    );
    let seq_acc = (
        seq.window_stats.accepted,
        seq.window_stats.late_dropped,
        seq.buffer.released,
        seq.buffer.late_passed,
    );
    if acc != seq_acc {
        return Err(Mismatch::new(
            "parallel-accounting",
            &exec,
            format!("accounting {acc:?} differs from sequential {seq_acc:?}"),
        ));
    }
    if (par.latency.mean - seq.latency.mean).abs() > 1e-6 {
        return Err(Mismatch::new(
            "parallel-latency",
            &exec,
            format!(
                "latency mean {} differs from sequential {}",
                par.latency.mean, seq.latency.mean
            ),
        ));
    }
    Ok(par)
}

/// The FiBA window state (the executor default) and the legacy
/// per-window/pane state must be element-identical: same windows, keys,
/// revisions and counts, with aggregate values exact except for the
/// non-associative float reductions, which are gated on the DESIGN.md §17
/// combine-nesting tolerance ([`backend_values_close`]).
fn check_window_state_equivalence(
    case: &SimCase,
    fiba_sorted: &[WindowResult],
    fiba: &RunOutput,
) -> Result<u64, Mismatch> {
    let mut execs = 0u64;
    let legacy_opts = [
        (ExecOptions::sequential(), "window-state-sequential"),
        (
            ExecOptions::parallel(
                ParallelConfig::new(4)
                    .with_batch_size(32)
                    .with_deterministic(true),
            ),
            "window-state-parallel-4x32",
        ),
    ];
    for (opts, exec) in legacy_opts {
        let legacy = run(case, &opts.with_window_state(WindowState::Legacy), exec)?;
        execs += 1;
        let legacy_sorted = sorted_results(&legacy.results);
        if legacy_sorted.len() != fiba_sorted.len() {
            return Err(Mismatch::new(
                "window-state-results",
                exec,
                format!(
                    "legacy backend emitted {} results, FiBA emitted {}",
                    legacy_sorted.len(),
                    fiba_sorted.len()
                ),
            ));
        }
        for (f, l) in fiba_sorted.iter().zip(&legacy_sorted) {
            if f.window != l.window || f.key != l.key || f.revision != l.revision {
                return Err(Mismatch::new(
                    "window-state-results",
                    exec,
                    format!(
                        "result identity diverged: FiBA {:?}/{:?} vs legacy {:?}/{:?}",
                        f.window, f.key, l.window, l.key
                    ),
                ));
            }
            if f.count != l.count {
                return Err(Mismatch::new(
                    "window-state-counts",
                    exec,
                    format!(
                        "window {:?} key {:?}: FiBA count {} vs legacy {}",
                        f.window, f.key, f.count, l.count
                    ),
                ));
            }
            for (i, spec) in case.aggregates.iter().enumerate() {
                let fv = f.aggregates.get(i).cloned().unwrap_or(Value::Null);
                let lv = l.aggregates.get(i).cloned().unwrap_or(Value::Null);
                if !backend_values_close(&spec.kind, &fv, &lv) {
                    return Err(Mismatch::new(
                        "window-state-values",
                        exec,
                        format!(
                            "window {:?} key {:?} aggregate {i} ({}): FiBA {fv:?} vs legacy {lv:?}",
                            f.window, f.key, spec.kind
                        ),
                    ));
                }
            }
        }
        // Completeness derives from counts, which are exact — those fields
        // must agree bit-for-bit. The relative-error metrics re-derive from
        // aggregate *values*, so the nesting-sensitive columns inherit the
        // same round-off latitude as the values themselves.
        let fq = &fiba.quality;
        let lq = &legacy.quality;
        let completeness_identical = fq.windows_total == lq.windows_total
            && fq.windows_missing == lq.windows_missing
            && fq.mean_completeness == lq.mean_completeness
            && fq.min_completeness == lq.min_completeness
            && fq.per_window.iter().zip(&lq.per_window).all(|(a, b)| {
                a.window == b.window
                    && a.key == b.key
                    && a.completeness == b.completeness
                    && a.emitted == b.emitted
            });
        if !completeness_identical || fq.per_window.len() != lq.per_window.len() {
            return Err(Mismatch::new(
                "window-state-quality",
                exec,
                "completeness accounting differs between window state backends".to_string(),
            ));
        }
        let rel_close = |a: f64, b: f64| a == b || (a - b).abs() <= 1e-6;
        for (i, spec) in case.aggregates.iter().enumerate() {
            let exact = !crate::oracle::nesting_sensitive(&spec.kind);
            let pairs = [
                (fq.mean_rel_error.get(i), lq.mean_rel_error.get(i)),
                (fq.max_rel_error.get(i), lq.max_rel_error.get(i)),
            ];
            let ok = pairs.iter().all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => {
                    if exact {
                        x == y || (x.is_nan() && y.is_nan())
                    } else {
                        rel_close(**x, **y) || (x.is_nan() && y.is_nan())
                    }
                }
                (None, None) => true,
                _ => false,
            });
            if !ok {
                return Err(Mismatch::new(
                    "window-state-quality",
                    exec,
                    format!(
                        "relative-error metrics for aggregate {i} ({}) diverged between backends",
                        spec.kind
                    ),
                ));
            }
        }
        let acc = |o: &RunOutput| {
            (
                o.window_stats.accepted,
                o.window_stats.late_dropped,
                o.buffer.released,
                o.buffer.late_passed,
            )
        };
        if acc(&legacy) != acc(fiba) {
            return Err(Mismatch::new(
                "window-state-accounting",
                exec,
                format!(
                    "accounting {:?} differs from FiBA {:?}",
                    acc(&legacy),
                    acc(fiba)
                ),
            ));
        }
    }
    Ok(execs)
}

/// Shard telemetry counters must reconcile with the run's own accounting.
fn check_telemetry(case: &SimCase) -> Result<(), Mismatch> {
    let exec = "telemetry-2x16-threaded";
    let reg = Registry::new();
    let cfg = ParallelConfig::new(2).with_batch_size(16);
    let opts = ExecOptions::parallel(cfg).with_telemetry(&reg);
    let out = run(case, &opts, exec)?;
    let snap = reg.snapshot();
    let n = case.events.len() as u64;
    let staged = out.buffer.released + out.buffer.late_passed;
    // Distinct (end, start, key) triples among the results — what the merge
    // counts as `quill.merge.windows`.
    let mut wins: Vec<(u64, u64, String)> = out
        .results
        .iter()
        .map(|r| (r.window.end.raw(), r.window.start.raw(), r.key.to_string()))
        .collect();
    wins.sort();
    wins.dedup();
    let checks = [
        ("quill.run.events", snap.counter("quill.run.events"), n),
        (
            "sum(quill.shard.*.events)",
            snap.counter_family_sum("quill.shard.", ".events"),
            staged,
        ),
        (
            "quill.run.results",
            snap.counter("quill.run.results"),
            out.results.len() as u64,
        ),
        (
            "quill.merge.elements",
            snap.counter("quill.merge.elements"),
            out.results.len() as u64,
        ),
        (
            "sum(quill.shard.*.finalized_windows)",
            snap.counter_family_sum("quill.shard.", ".finalized_windows"),
            out.results.len() as u64,
        ),
        (
            "quill.merge.windows",
            snap.counter("quill.merge.windows"),
            wins.len() as u64,
        ),
        (
            "quill.run.late_dropped",
            snap.counter("quill.run.late_dropped"),
            out.window_stats.late_dropped,
        ),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Err(Mismatch::new(
                "telemetry-reconciliation",
                exec,
                format!("{name} = {got}, expected {want}"),
            ));
        }
    }
    Ok(())
}

/// With K above the disorder bound, results must be exactly the oracle's and
/// must not depend on the arrival permutation.
fn check_permutation_invariance(case: &SimCase) -> Result<u64, Mismatch> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut shuffled = case.events.clone();
    let mut rng = StdRng::seed_from_u64(case.seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    quill_gen::reseq(&mut shuffled);

    let d = max_disorder(&case.events).max(max_disorder(&shuffled));
    let query = case.query();
    let mut execs = 0u64;
    let mut run_full = |events: &[Event], exec: &str| -> Result<RunOutput, Mismatch> {
        execs += 1;
        let mut s = FixedKSlack::new(d + 1);
        let out = execute(events, &mut s, &query, &ExecOptions::sequential())
            .map_err(|e| Mismatch::new("execute-error", exec, e.to_string()))?;
        if out.buffer.late_passed != 0 {
            return Err(Mismatch::new(
                "permutation-late",
                exec,
                format!(
                    "K={} exceeds the disorder bound {d} yet {} events passed late",
                    d + 1,
                    out.buffer.late_passed
                ),
            ));
        }
        Ok(out)
    };
    let a = run_full(&case.events, "permutation-original")?;
    let b = run_full(&shuffled, "permutation-shuffled")?;
    for (out, events, exec) in [
        (&a, &case.events, "permutation-original"),
        (&b, &shuffled, "permutation-shuffled"),
    ] {
        let naive = naive_oracle(events, case.window, &case.aggregates, case.key_field);
        check_against_oracle(&out.results, &naive, &case.aggregates, true, exec)?;
    }
    let counts = |out: &RunOutput| -> Vec<(u64, u64, String, u64)> {
        let mut v: Vec<_> = out
            .results
            .iter()
            .map(|r| {
                (
                    r.window.end.raw(),
                    r.window.start.raw(),
                    r.key.to_string(),
                    r.count,
                )
            })
            .collect();
        v.sort();
        v
    };
    if counts(&a) != counts(&b) {
        return Err(Mismatch::new(
            "permutation-counts",
            "permutation",
            "per-window counts differ between the two arrival orders".to_string(),
        ));
    }
    Ok(execs)
}

/// Run the full battery for one case.
///
/// # Errors
/// Returns the first [`Mismatch`] found.
pub fn check_case(case: &SimCase) -> Result<CaseStats, Mismatch> {
    let mut stats = CaseStats::default();
    let naive = naive_oracle(&case.events, case.window, &case.aggregates, case.key_field);
    let n = case.events.len() as u64;

    check_staging(case)?;

    let seq = run(case, &ExecOptions::sequential(), "sequential")?;
    stats.executions += 1;
    if seq.events != n {
        return Err(Mismatch::new(
            "event-count",
            "sequential",
            format!("run saw {} events, input has {n}", seq.events),
        ));
    }
    if seq.window_stats.accepted + seq.window_stats.late_dropped != n {
        return Err(Mismatch::new(
            "operator-accounting",
            "sequential",
            format!(
                "accepted {} + late_dropped {} != {n}",
                seq.window_stats.accepted, seq.window_stats.late_dropped
            ),
        ));
    }
    stats.windows_checked +=
        check_against_oracle(&seq.results, &naive, &case.aggregates, false, "sequential")?;
    check_quality_agreement(&seq, &naive, "sequential")?;

    let seq_sorted = sorted_results(&seq.results);
    // Default parallel path: shard-local window finalization (the strategy
    // runs control-only; each shard stages and finalizes its own keys).
    for (shards, batch) in [(1usize, 1usize), (2, 7), (4, 64), (8, 256)] {
        check_parallel_equivalence(case, &seq, &seq_sorted, shards, batch, true, false)?;
        stats.executions += 1;
    }
    // Legacy global staging must stay equivalent too.
    for (shards, batch) in [(2usize, 7usize), (8, 256)] {
        check_parallel_equivalence(case, &seq, &seq_sorted, shards, batch, true, true)?;
        stats.executions += 1;
    }
    let threaded = check_parallel_equivalence(case, &seq, &seq_sorted, 4, 32, false, false)?;
    stats.executions += 1;

    // Scheduler independence: the deterministic inline path and the threaded
    // path must agree on the full result sequence, not just the multiset.
    let inline_cfg = ParallelConfig::new(4)
        .with_batch_size(32)
        .with_deterministic(true);
    let inline = run(
        case,
        &ExecOptions::parallel(inline_cfg),
        "parallel-4x32-inline",
    )?;
    stats.executions += 1;
    if inline.results != threaded.results {
        return Err(Mismatch::new(
            "scheduler-dependence",
            "parallel-4x32",
            "inline and threaded executors emitted different result sequences".to_string(),
        ));
    }

    // Staging independence: shard-local finalization and global staging
    // must emit the identical result sequence, not just the multiset.
    let global_threaded = check_parallel_equivalence(case, &seq, &seq_sorted, 4, 32, false, true)?;
    stats.executions += 1;
    if global_threaded.results != threaded.results {
        return Err(Mismatch::new(
            "staging-dependence",
            "parallel-4x32",
            "shard-local and global staging emitted different result sequences".to_string(),
        ));
    }

    // Window-state backend differential: FiBA (the default every leg above
    // ran on) vs. the retained legacy backend, sequential and parallel.
    stats.executions += check_window_state_equivalence(case, &seq_sorted, &seq)?;

    check_telemetry(case)?;
    stats.executions += 1;

    if case.strategy == StrategySpec::Oracle {
        // Full buffering must reproduce the oracle exactly...
        check_against_oracle(
            &seq.results,
            &naive,
            &case.aggregates,
            true,
            "oracle-buffer",
        )?;
        if seq.quality.mean_completeness < 1.0 - 1e-9 {
            return Err(Mismatch::new(
                "oracle-completeness",
                "oracle-buffer",
                format!("mean completeness {}", seq.quality.mean_completeness),
            ));
        }
        // ...and the strategy-independent permutation law is checked once
        // per suite, on this case.
        stats.executions += check_permutation_invariance(case)?;
    }
    Ok(stats)
}

/// Greedily shrink a failing case: drop event chunks (halving chunk sizes),
/// then drop aggregates, keeping every change that still fails. Bounded, so
/// pathological cases cannot stall the suite.
pub fn shrink_case(mut case: SimCase) -> SimCase {
    let mut budget = 200usize;
    let mut chunk = (case.events.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut i = 0;
        while i + chunk <= case.events.len() && case.events.len() > 1 && budget > 0 {
            budget -= 1;
            let mut candidate = case.clone();
            candidate.events.drain(i..i + chunk);
            quill_gen::reseq(&mut candidate.events);
            if check_case(&candidate).is_err() {
                case = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    while case.aggregates.len() > 1 && budget > 0 {
        let mut shrunk = None;
        for i in 0..case.aggregates.len() {
            budget = budget.saturating_sub(1);
            let mut candidate = case.clone();
            candidate.aggregates.remove(i);
            if check_case(&candidate).is_err() {
                shrunk = Some(candidate);
                break;
            }
        }
        match shrunk {
            Some(c) => case = c,
            None => break,
        }
    }
    case
}

/// Check every case of `seed`'s suite; on the first failure, shrink it,
/// write a reproducer under `failures_dir`, and return the path alongside
/// the (post-shrink) mismatch.
///
/// # Errors
/// Returns the reproducer path and the mismatch it captures.
pub fn run_seed(seed: u64, failures_dir: &Path) -> Result<CaseStats, (PathBuf, Mismatch)> {
    let mut total = CaseStats::default();
    for case in sample_suite(seed) {
        match check_case(&case) {
            Ok(s) => total.absorb(s),
            Err(first) => {
                let small = shrink_case(case);
                let mismatch = check_case(&small).err().unwrap_or(first);
                let path = crate::repro::write_reproducer(failures_dir, &small, &mismatch);
                return Err((path, mismatch));
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};

    fn tiny_case(strategy: StrategySpec) -> SimCase {
        SimCase {
            seed: 0,
            window: WindowSpec::tumbling(50u64),
            aggregates: vec![
                AggregateSpec::new(AggregateKind::Sum, 1, "s"),
                AggregateSpec::new(AggregateKind::Median, 1, "m"),
            ],
            key_field: Some(0),
            strategy,
            events: (0..60u64)
                .map(|i| {
                    let ts = i * 7 % 130;
                    Event::new(
                        ts,
                        i,
                        Row::new([
                            Value::Int((i % 3) as i64),
                            Value::Float(ts as f64),
                            Value::Float(-(ts as f64)),
                        ]),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn hand_built_oracle_case_passes_the_battery() {
        let mut case = tiny_case(StrategySpec::Oracle);
        quill_gen::reseq(&mut case.events);
        let stats = check_case(&case).unwrap_or_else(|m| panic!("unexpected mismatch: {m}"));
        assert!(stats.executions >= 8);
        assert!(stats.windows_checked > 0);
    }

    #[test]
    fn hand_built_lossy_case_passes_the_battery() {
        let mut case = tiny_case(StrategySpec::FixedK(20));
        quill_gen::reseq(&mut case.events);
        check_case(&case).unwrap_or_else(|m| panic!("unexpected mismatch: {m}"));
    }

    #[test]
    fn float_nesting_tolerance_rule_gates_the_backend_differential() {
        // The one targeted regression for the DESIGN.md §17 rule: a stream
        // engineered for catastrophic cancellation (1e16-magnitude values
        // that mostly cancel) makes the FiBA and legacy backends round Sum
        // and Variance differently, while Min/Median/First must stay
        // bit-exact. The battery must pass — the tolerance gate, not an
        // ad-hoc epsilon, absorbs the combine-nesting difference.
        let vals = [1.0e16, 7.25, -1.0e16, 0.125, 3.5, -0.375, 1.0e12, -2.0];
        let mut case = SimCase {
            seed: 0,
            window: WindowSpec::sliding(40u64, 10u64),
            aggregates: vec![
                AggregateSpec::new(AggregateKind::Sum, 1, "s"),
                AggregateSpec::new(AggregateKind::Variance, 1, "v"),
                AggregateSpec::new(AggregateKind::Min, 1, "lo"),
                AggregateSpec::new(AggregateKind::Median, 1, "med"),
                AggregateSpec::new(AggregateKind::First, 1, "f"),
            ],
            key_field: Some(0),
            strategy: StrategySpec::FixedK(60),
            events: (0..240u64)
                .map(|i| {
                    let base = (i / 4) * 10;
                    let ts = if i % 5 == 2 {
                        base.saturating_sub(45)
                    } else {
                        base + i % 7
                    };
                    Event::new(
                        ts,
                        i,
                        Row::new([
                            Value::Int((i % 3) as i64),
                            Value::Float(vals[(i % 8) as usize] * (1.0 + (i % 9) as f64 * 1e-6)),
                            Value::Float((i % 10) as f64),
                        ]),
                    )
                })
                .collect(),
        };
        quill_gen::reseq(&mut case.events);
        check_case(&case).unwrap_or_else(|m| panic!("tolerance rule failed to gate: {m}"));
    }

    #[test]
    fn corrupted_events_are_caught_and_shrunk() {
        // Duplicate seqs break the staging conservation law.
        let mut case = tiny_case(StrategySpec::Oracle);
        quill_gen::reseq(&mut case.events);
        let last = case.events.len() - 1;
        case.events[last].seq = 0;
        let err = check_case(&case).expect_err("corrupt case must fail");
        assert_eq!(err.check, "conservation");
        let small = shrink_case(case);
        assert!(check_case(&small).is_err());
        assert!(small.events.len() <= 60);
    }

    #[test]
    fn full_seed_run_is_clean() {
        let dir = std::env::temp_dir().join("quill-sim-selftest");
        let stats = run_seed(3, &dir)
            .unwrap_or_else(|(p, m)| panic!("seed 3 failed: {m} (reproducer at {})", p.display()));
        assert!(stats.executions > 0);
    }
}
