//! Seeded random simulation-case generation.
//!
//! A [`SimCase`] bundles everything one differential check needs: the query
//! shape (window, aggregates, keying), the disorder-control strategy, and the
//! exact event vector — already perturbed by the adversarial mutators from
//! `quill_gen::mutate`. Cases are sampled through the vendored `proptest`
//! strategies from a single [`proptest::TestRng`], so a seed fully determines
//! the case and a failing seed replays bit-for-bit.

use proptest::{prop_oneof, BoxedStrategy, Just, Strategy, TestRng};
use quill_core::prelude::{
    AqConfig, AqKSlack, DisorderControl, DropAll, FixedKSlack, MpKSlack, OracleBuffer,
    PunctuatedBuffer, QuerySpec,
};
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::{Event, FieldType, Row, Schema, Timestamp, Value, WindowSpec};
use quill_gen::arrival::ConstantRate;
use quill_gen::delay::{Constant, DelayModel, Exponential, Pareto, UniformDelay};
use quill_gen::mutate::{self, Mutator};
use quill_gen::source;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which disorder-control strategy a case runs, with its parameters — a
/// plain-data mirror of the `quill-core` strategy constructors so cases can
/// be encoded into reproducer files and rebuilt from them.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySpec {
    /// `DropAll`: K = 0, maximal loss, minimal latency.
    DropAll,
    /// `FixedKSlack` with the given K.
    FixedK(u64),
    /// `MpKSlack`, unbounded.
    Mp,
    /// `MpKSlack::bounded` with the given cap.
    MpBounded(u64),
    /// `AqKSlack::for_completeness` with the given target (always < 1.0).
    AqCompleteness(f64),
    /// `AqKSlack` with a max-relative-error target on aggregate 0.
    AqError(f64),
    /// `OracleBuffer`: full buffering, zero loss.
    Oracle,
    /// `PunctuatedBuffer` over per-source progress punctuation.
    Punctuated {
        /// Row field carrying the source id.
        source_field: usize,
        /// Number of distinct sources expected.
        expected_sources: usize,
        /// Per-source slack added below the joint watermark.
        slack: u64,
    },
}

impl StrategySpec {
    /// Construct the live strategy this spec describes.
    pub fn build(&self) -> Box<dyn DisorderControl> {
        match *self {
            StrategySpec::DropAll => Box::new(DropAll::new()),
            StrategySpec::FixedK(k) => Box::new(FixedKSlack::new(k)),
            StrategySpec::Mp => Box::new(MpKSlack::new()),
            StrategySpec::MpBounded(cap) => Box::new(MpKSlack::bounded(cap)),
            StrategySpec::AqCompleteness(q) => Box::new(AqKSlack::for_completeness(q)),
            StrategySpec::AqError(eps) => Box::new(AqKSlack::new(AqConfig::max_rel_error(eps, 0))),
            StrategySpec::Oracle => Box::new(OracleBuffer::new()),
            StrategySpec::Punctuated {
                source_field,
                expected_sources,
                slack,
            } => Box::new(
                PunctuatedBuffer::new(source_field, expected_sources).with_source_slack(slack),
            ),
        }
    }

    /// Compact reversible text form, used in reproducer files.
    pub fn encode(&self) -> String {
        match self {
            StrategySpec::DropAll => "dropall".into(),
            StrategySpec::FixedK(k) => format!("fixedk:{k}"),
            StrategySpec::Mp => "mp".into(),
            StrategySpec::MpBounded(cap) => format!("mpcap:{cap}"),
            StrategySpec::AqCompleteness(q) => format!("aqc:{q:?}"),
            StrategySpec::AqError(eps) => format!("aqe:{eps:?}"),
            StrategySpec::Oracle => "oracle".into(),
            StrategySpec::Punctuated {
                source_field,
                expected_sources,
                slack,
            } => format!("punct:{source_field}:{expected_sources}:{slack}"),
        }
    }

    /// Parse the [`StrategySpec::encode`] form back.
    ///
    /// # Errors
    /// Returns a description of the malformed field.
    pub fn parse(s: &str) -> Result<StrategySpec, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let mut num = |what: &str| -> Result<String, String> {
            parts
                .next()
                .map(str::to_string)
                .ok_or_else(|| format!("strategy {head}: missing {what}"))
        };
        let parsed = match head {
            "dropall" => StrategySpec::DropAll,
            "fixedk" => {
                StrategySpec::FixedK(num("k")?.parse().map_err(|e| format!("fixedk k: {e}"))?)
            }
            "mp" => StrategySpec::Mp,
            "mpcap" => {
                StrategySpec::MpBounded(num("cap")?.parse().map_err(|e| format!("mpcap cap: {e}"))?)
            }
            "aqc" => {
                StrategySpec::AqCompleteness(num("q")?.parse().map_err(|e| format!("aqc q: {e}"))?)
            }
            "aqe" => {
                StrategySpec::AqError(num("eps")?.parse().map_err(|e| format!("aqe eps: {e}"))?)
            }
            "oracle" => StrategySpec::Oracle,
            "punct" => StrategySpec::Punctuated {
                source_field: num("source_field")?
                    .parse()
                    .map_err(|e| format!("punct source_field: {e}"))?,
                expected_sources: num("expected_sources")?
                    .parse()
                    .map_err(|e| format!("punct expected_sources: {e}"))?,
                slack: num("slack")?
                    .parse()
                    .map_err(|e| format!("punct slack: {e}"))?,
            },
            other => return Err(format!("unknown strategy {other:?}")),
        };
        Ok(parsed)
    }
}

/// One self-contained differential test case.
#[derive(Debug, Clone)]
pub struct SimCase {
    /// Seed of the suite this case came from (0 for hand-built cases).
    pub seed: u64,
    /// Window shape.
    pub window: WindowSpec,
    /// Aggregates, all over field 1 (`ArgMin`/`ArgMax` rank by field 2).
    pub aggregates: Vec<AggregateSpec>,
    /// Grouping field, if keyed.
    pub key_field: Option<usize>,
    /// Disorder-control strategy under test.
    pub strategy: StrategySpec,
    /// The exact (already mutated) event vector.
    pub events: Vec<Event>,
}

impl SimCase {
    /// The query this case executes.
    pub fn query(&self) -> QuerySpec {
        QuerySpec::new(self.window, self.aggregates.clone(), self.key_field)
    }
}

/// Strategy over all 14 aggregate kinds (quantiles and arg-extremes
/// parameterized).
pub fn arb_aggregate() -> BoxedStrategy<AggregateKind> {
    prop_oneof![
        Just(AggregateKind::Count),
        Just(AggregateKind::Sum),
        Just(AggregateKind::Mean),
        Just(AggregateKind::Min),
        Just(AggregateKind::Max),
        Just(AggregateKind::StdDev),
        Just(AggregateKind::Variance),
        Just(AggregateKind::Median),
        (1u32..100u32).prop_map(|p| AggregateKind::Quantile(f64::from(p) / 100.0)),
        Just(AggregateKind::DistinctCount),
        Just(AggregateKind::First),
        Just(AggregateKind::Last),
        Just(AggregateKind::ArgMin(2)),
        Just(AggregateKind::ArgMax(2)),
    ]
    .boxed()
}

/// Strategy over window shapes: tumbling, aligned sliding, and sliding with
/// a slide that does not divide the length (pane-misaligned).
pub fn arb_window() -> BoxedStrategy<WindowSpec> {
    prop_oneof![
        (2u64..=40u64).prop_map(|w| WindowSpec::tumbling(w * 10)),
        (1u64..=8u64, 2u64..=6u64).prop_map(|(s, m)| WindowSpec::sliding(s * 10 * m, s * 10)),
        (7u64..=40u64, 1u64..=3u64, 1u64..=6u64)
            .prop_map(|(slide, m, off)| WindowSpec::sliding(slide * m + off.min(slide - 1), slide)),
    ]
    .boxed()
}

/// How the generated stream's transport delay behaves before mutation.
#[derive(Debug, Clone, Copy)]
enum DelayChoice {
    InOrder,
    Uniform(u64),
    Exponential(u64),
    Pareto(u64),
}

impl DelayChoice {
    fn model(self) -> Box<dyn DelayModel> {
        match self {
            DelayChoice::InOrder => Box::new(Constant(0)),
            DelayChoice::Uniform(hi) => Box::new(UniformDelay { lo: 0, hi }),
            DelayChoice::Exponential(mean) => Box::new(Exponential { mean: mean as f64 }),
            DelayChoice::Pareto(scale) => Box::new(Pareto {
                scale: scale as f64,
                shape: 1.5,
            }),
        }
    }
}

const MUTATOR_COUNT: u32 = 8;

/// The adversarial mutators selected by `mask` (one bit each), with fixed
/// moderate parameters; `keys` bounds the hot key for `KeySkew` and
/// `window_len` sets the `DeepStraggler` depth to at least half a window.
fn mutators_for(mask: u16, keys: i64, window_len: u64) -> Vec<Box<dyn Mutator>> {
    let mut out: Vec<Box<dyn Mutator>> = Vec::new();
    if mask & 1 != 0 {
        out.push(Box::new(mutate::Duplicate { fraction: 0.05 }));
    }
    if mask & 2 != 0 {
        out.push(Box::new(mutate::Straggler { fraction: 0.03 }));
    }
    if mask & 4 != 0 {
        out.push(Box::new(mutate::ClockSurge));
    }
    if mask & 8 != 0 {
        out.push(Box::new(mutate::Dropout { fraction: 0.05 }));
    }
    if mask & 16 != 0 {
        out.push(Box::new(mutate::Burst {
            bursts: 3,
            max_len: 12,
        }));
    }
    if mask & 32 != 0 {
        out.push(Box::new(mutate::KeySkew {
            field: 0,
            hot_key: keys - 1,
            fraction: 0.4,
        }));
    }
    if mask & 64 != 0 {
        out.push(Box::new(mutate::TieCluster { quantum: 10 }));
    }
    if mask & 128 != 0 {
        out.push(Box::new(mutate::DeepStraggler {
            depth: (window_len / 2).max(1),
            fraction: 0.05,
        }));
    }
    out
}

/// Build the shared event vector for a suite: a seeded generated stream with
/// `[Int(source/key), Float(v), Float(w)]` rows, then the selected mutators.
fn build_events(
    n: usize,
    period: u64,
    keys: i64,
    delay: DelayChoice,
    mutator_mask: u16,
    window_len: u64,
    stream_seed: u64,
) -> Vec<Event> {
    let schema = Schema::new([
        ("source", FieldType::Int),
        ("v", FieldType::Float),
        ("w", FieldType::Float),
    ])
    .expect("static schema");
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let mut arrival = ConstantRate { period };
    let mut delay_model = delay.model();
    let mut stream = source::build_stream(
        schema,
        n,
        Timestamp(0),
        &mut arrival,
        delay_model.as_mut(),
        &mut rng,
        |r, _ts, _i| {
            use rand::Rng;
            Row::new([
                Value::Int(r.gen_range(0..keys.max(1))),
                Value::Float(r.gen_range(0.0..100.0)),
                Value::Float(r.gen_range(-50.0..50.0)),
            ])
        },
    );
    let muts = mutators_for(mutator_mask, keys.max(1), window_len);
    mutate::apply_all(&mut stream.events, &muts, &mut rng);
    stream.events
}

/// Sample one suite for `seed`: a shared query shape and mutated stream,
/// expanded into one [`SimCase`] per strategy family so every seed exercises
/// every strategy kind over identical input.
pub fn sample_suite(seed: u64) -> Vec<SimCase> {
    let mut rng = TestRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);

    let keys = (1i64..=6i64).sample(&mut rng);
    let key_field = if (0u8..=2u8).sample(&mut rng) > 0 {
        Some(0)
    } else {
        None
    };
    let window = arb_window().sample(&mut rng);
    let agg = arb_aggregate();
    let n_aggs = (1usize..=4usize).sample(&mut rng);
    let aggregates: Vec<AggregateSpec> = (0..n_aggs)
        .map(|i| AggregateSpec::new(agg.sample(&mut rng), 1, format!("a{i}")))
        .collect();

    let n = (120usize..=360usize).sample(&mut rng);
    let period = *[1u64, 5, 10]
        .get((0usize..=2usize).sample(&mut rng))
        .expect("period index in range");
    let delay = match (0u8..=3u8).sample(&mut rng) {
        0 => DelayChoice::InOrder,
        1 => DelayChoice::Uniform((1u64..=40u64).sample(&mut rng) * period.max(1)),
        2 => DelayChoice::Exponential((1u64..=15u64).sample(&mut rng) * period.max(1)),
        _ => DelayChoice::Pareto((1u64..=8u64).sample(&mut rng) * period.max(1)),
    };
    let mutator_mask = (0u16..(1u16 << MUTATOR_COUNT)).sample(&mut rng);
    let stream_seed = rng.next_u64();
    let events = build_events(
        n,
        period,
        keys,
        delay,
        mutator_mask,
        window.length().raw(),
        stream_seed,
    );

    let strategies = vec![
        StrategySpec::DropAll,
        StrategySpec::FixedK((0u64..=600u64).sample(&mut rng)),
        StrategySpec::Mp,
        StrategySpec::MpBounded((10u64..=400u64).sample(&mut rng)),
        StrategySpec::AqCompleteness((80u32..=99u32).sample(&mut rng) as f64 / 100.0),
        StrategySpec::AqError((1u32..=10u32).sample(&mut rng) as f64 / 100.0),
        StrategySpec::Oracle,
        StrategySpec::Punctuated {
            source_field: 0,
            expected_sources: keys.max(1) as usize,
            slack: (0u64..=200u64).sample(&mut rng),
        },
    ];

    strategies
        .into_iter()
        .map(|strategy| SimCase {
            seed,
            window,
            aggregates: aggregates.clone(),
            key_field,
            strategy,
            events: events.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_seed_deterministic() {
        let a = sample_suite(42);
        let b = sample_suite(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.strategy, y.strategy);
            assert_eq!(x.events.len(), y.events.len());
            assert_eq!(x.window, y.window);
            for (e, f) in x.events.iter().zip(&y.events) {
                assert_eq!((e.ts, e.seq), (f.ts, f.seq));
                assert_eq!(e.row.values(), f.row.values());
            }
        }
    }

    #[test]
    fn every_strategy_family_appears_once_per_suite() {
        let suite = sample_suite(7);
        assert_eq!(suite.len(), 8);
        let heads: Vec<String> = suite
            .iter()
            .map(|c| c.strategy.encode().split(':').next().unwrap().to_string())
            .collect();
        assert_eq!(
            heads,
            ["dropall", "fixedk", "mp", "mpcap", "aqc", "aqe", "oracle", "punct"]
        );
    }

    #[test]
    fn strategy_specs_round_trip_through_encode() {
        let specs = vec![
            StrategySpec::DropAll,
            StrategySpec::FixedK(123),
            StrategySpec::Mp,
            StrategySpec::MpBounded(456),
            StrategySpec::AqCompleteness(0.93),
            StrategySpec::AqError(0.07),
            StrategySpec::Oracle,
            StrategySpec::Punctuated {
                source_field: 0,
                expected_sources: 4,
                slack: 50,
            },
        ];
        for s in specs {
            assert_eq!(StrategySpec::parse(&s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = sample_suite(1);
        let b = sample_suite(2);
        let differs = a[0].events.len() != b[0].events.len()
            || a[0].window != b[0].window
            || a[0]
                .events
                .iter()
                .zip(&b[0].events)
                .any(|(x, y)| x.ts != y.ts);
        assert!(differs);
    }
}
