//! Property-based tests of workload generation: conservation, determinism,
//! trace-format roundtrips with adversarial payloads, and delay-model
//! sanity.

use proptest::prelude::*;
use quill_engine::prelude::*;
use quill_gen::source::{delay_and_shuffle, GeneratedStream};
use quill_gen::trace;
use quill_gen::{Constant, DelayModel, Exponential, Pareto, UniformDelay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Float),
        // Strings with the characters the escaper must handle.
        "[a-z\\\\\t\n ]{0,12}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn delay_and_shuffle_conserves_events(
        tss in prop::collection::vec(0u64..100_000, 1..300),
        seed in 0u64..1_000,
        mean in 1.0f64..500.0,
    ) {
        let mut sorted_ts = tss.clone();
        sorted_ts.sort_unstable();
        let schema = Schema::new([("v", FieldType::Int)]).expect("valid schema");
        let source: Vec<(Timestamp, Row)> = sorted_ts
            .iter()
            .map(|&t| (Timestamp(t), Row::new([Value::Int(t as i64)])))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delay = Exponential { mean };
        let stream = delay_and_shuffle(schema, source, &mut delay, &mut rng, "t");
        // Same multiset of timestamps; dense arrival seqs.
        let mut got: Vec<u64> = stream.events.iter().map(|e| e.ts.raw()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, sorted_ts);
        for (i, e) in stream.events.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64);
        }
        // Measured stats match a recomputation.
        let mut tracker = ClockTracker::new();
        for e in &stream.events {
            tracker.observe(e.ts);
        }
        prop_assert_eq!(stream.stats, tracker.stats());
    }

    #[test]
    fn constant_delay_never_creates_disorder(
        tss in prop::collection::vec(0u64..100_000, 1..200),
        d in 0u64..10_000,
        seed in 0u64..100,
    ) {
        let mut sorted_ts = tss.clone();
        sorted_ts.sort_unstable();
        let schema = Schema::new([("v", FieldType::Int)]).expect("valid schema");
        let source: Vec<(Timestamp, Row)> =
            sorted_ts.iter().map(|&t| (Timestamp(t), Row::empty())).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delay = Constant(d);
        let stream = delay_and_shuffle(schema, source, &mut delay, &mut rng, "t");
        prop_assert_eq!(stream.stats.out_of_order, 0);
    }

    #[test]
    fn uniform_delay_bounds_measured_disorder(
        n in 10usize..300,
        period in 1u64..50,
        hi in 0u64..2_000,
        seed in 0u64..100,
    ) {
        let stream = quill_gen::workload::synthetic::uniform(n, period, 0, hi, seed);
        prop_assert!(stream.stats.max_delay.raw() <= hi);
    }

    #[test]
    fn trace_roundtrips_arbitrary_rows(
        rows in prop::collection::vec(
            (0u64..1_000_000, any_value(), any_value()),
            0..60,
        ),
    ) {
        let schema = Schema::new([("a", FieldType::Int), ("b", FieldType::Float)])
            .expect("valid schema");
        // Coerce values to schema-compatible ones (type column a: Int/Null,
        // b: Float/Null) to honour schema validation on decode... the trace
        // format itself is schema-driven, so build rows that match.
        let events: Vec<Event> = rows
            .iter()
            .enumerate()
            .map(|(i, (t, v1, v2))| {
                let a = match v1 {
                    Value::Int(x) => Value::Int(*x),
                    _ => Value::Null,
                };
                let b = match v2 {
                    Value::Float(x) => Value::Float(*x),
                    _ => Value::Null,
                };
                Event::new(*t, i as u64, Row::new([a, b]))
            })
            .collect();
        let mut tracker = ClockTracker::new();
        for e in &events {
            tracker.observe(e.ts);
        }
        let stream = GeneratedStream {
            schema,
            events,
            stats: tracker.stats(),
            description: "prop".into(),
        };
        let decoded = trace::decode(&trace::encode(&stream)).expect("roundtrip decodes");
        prop_assert_eq!(decoded.events, stream.events);
        prop_assert_eq!(decoded.stats, stream.stats);
    }

    #[test]
    fn trace_roundtrips_adversarial_strings(
        strings in prop::collection::vec("[\\x00-\\x7f]{0,20}", 1..30),
    ) {
        let schema = Schema::new([("s", FieldType::Str)]).expect("valid schema");
        let events: Vec<Event> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| Event::new(i as u64, i as u64, Row::new([Value::str(s.as_str())])))
            .collect();
        let stream = GeneratedStream {
            schema,
            events,
            stats: Default::default(),
            description: String::new(),
        };
        let decoded = trace::decode(&trace::encode(&stream)).expect("roundtrip decodes");
        prop_assert_eq!(decoded.events.len(), stream.events.len());
        for (a, b) in decoded.events.iter().zip(&stream.events) {
            prop_assert_eq!(a.row.get(0).as_str(), b.row.get(0).as_str());
        }
    }

    #[test]
    fn delay_models_are_nonnegative_and_seeded(
        seed in 0u64..1_000,
        mean in 0.1f64..1_000.0,
        shape in 1.1f64..10.0,
    ) {
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let mut models1: Vec<Box<dyn DelayModel>> = vec![
            Box::new(Exponential { mean }),
            Box::new(Pareto { scale: mean, shape }),
            Box::new(UniformDelay { lo: 0, hi: mean as u64 }),
        ];
        let mut models2: Vec<Box<dyn DelayModel>> = vec![
            Box::new(Exponential { mean }),
            Box::new(Pareto { scale: mean, shape }),
            Box::new(UniformDelay { lo: 0, hi: mean as u64 }),
        ];
        for (m1, m2) in models1.iter_mut().zip(models2.iter_mut()) {
            for t in 0..50u64 {
                let d1 = m1.sample(&mut rng1, Timestamp(t));
                let d2 = m2.sample(&mut rng2, Timestamp(t));
                prop_assert_eq!(d1, d2, "same seed must reproduce");
            }
        }
    }
}
