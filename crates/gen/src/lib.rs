//! # quill-gen
//!
//! Reproducible out-of-order stream workload generation:
//!
//! * [`arrival`] — arrival processes assigning monotone event timestamps;
//! * [`delay`] — transport-delay models (the sole source of disorder),
//!   including heavy-tailed, bursty Markov-modulated and drifting regimes;
//! * [`payload`] — field value generators (random walks, Gaussians, Zipf
//!   keys);
//! * [`source`] — assembly of delayed events into arrival-ordered streams
//!   with measured disorder statistics;
//! * [`workload`] — the simulated soccer / stock / netmon workloads plus
//!   controlled synthetic sweeps (substitutions for unavailable real data,
//!   see DESIGN.md §3);
//! * [`mutate`] — seeded adversarial mutators (duplication, stragglers,
//!   clock surges, dropout, bursts, key skew, timestamp ties) layered over
//!   the generated streams for the `quill-sim` differential harness;
//! * [`trace`] — text-format capture and bit-exact replay of generated
//!   streams.
//!
//! Everything is seeded: the same seed always yields the same stream.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod delay;
pub mod mutate;
pub mod payload;
pub mod source;
pub mod trace;
pub mod workload;

pub use arrival::{ArrivalProcess, ConstantRate, PoissonArrivals};
pub use delay::{
    Bimodal, Constant, DelayModel, Drift, DriftShape, Empirical, Exponential, LogNormal,
    MarkovBurst, NormalDelay, Pareto, UniformDelay,
};
pub use mutate::{apply_all, reseq, Mutator};
pub use payload::{Choice, Gaussian, RandomWalk, ValueGen, Zipf};
pub use source::{build_stream, delay_and_shuffle, merge_sources, GeneratedStream};
