//! Payload value generators: the data carried by generated events.

use quill_engine::prelude::Value;
use rand::Rng;

/// A generator of one field's values across consecutive events.
pub trait ValueGen: Send {
    /// Produce the next value.
    fn next_value(&mut self, rng: &mut dyn rand::RngCore) -> Value;
}

/// Gaussian random walk: `x_{i+1} = x_i + N(0, step²)`, optionally clamped.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalk {
    /// Current position (updated as values are drawn).
    pub current: f64,
    /// Step standard deviation.
    pub step: f64,
    /// Inclusive clamp bounds.
    pub bounds: Option<(f64, f64)>,
}

impl RandomWalk {
    /// Start a walk at `start` with the given step size, unbounded.
    pub fn new(start: f64, step: f64) -> RandomWalk {
        RandomWalk {
            current: start,
            step,
            bounds: None,
        }
    }

    /// Clamp the walk to `[lo, hi]`.
    pub fn clamped(mut self, lo: f64, hi: f64) -> RandomWalk {
        self.bounds = Some((lo, hi));
        self
    }
}

impl ValueGen for RandomWalk {
    fn next_value(&mut self, rng: &mut dyn rand::RngCore) -> Value {
        let u1: f64 = rng.gen::<f64>();
        let u1 = (1.0 - u1).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.current += z * self.step;
        if let Some((lo, hi)) = self.bounds {
            self.current = self.current.clamp(lo, hi);
        }
        Value::Float(self.current)
    }
}

/// Independent Gaussian values `N(mean, stddev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Gaussian {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub stddev: f64,
}

impl ValueGen for Gaussian {
    fn next_value(&mut self, rng: &mut dyn rand::RngCore) -> Value {
        let u1: f64 = rng.gen::<f64>();
        let u1 = (1.0 - u1).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Value::Float(self.mean + self.stddev * z)
    }
}

/// Zipf-distributed categorical keys `0..n` with exponent `s`: key `k` has
/// probability ∝ `1/(k+1)^s`. Implements the skewed grouping keys (hot
/// stocks, chatty hosts) real workloads exhibit.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` keys with exponent `s >= 0`
    /// (`s = 0` is uniform). `n` must be > 0.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf requires at least one key");
        let mut weights: Vec<f64> = (0..n)
            .map(|k| 1.0 / ((k + 1) as f64).powf(s.max(0.0)))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift at the top.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Sample a key index.
    pub fn sample(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

impl ValueGen for Zipf {
    fn next_value(&mut self, rng: &mut dyn rand::RngCore) -> Value {
        Value::Int(self.sample(rng) as i64)
    }
}

/// Uniform choice among a fixed set of values.
#[derive(Debug, Clone)]
pub struct Choice {
    /// The candidate values (non-empty).
    pub options: Vec<Value>,
}

impl ValueGen for Choice {
    fn next_value(&mut self, rng: &mut dyn rand::RngCore) -> Value {
        assert!(!self.options.is_empty(), "Choice requires options");
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn random_walk_moves_and_clamps() {
        let mut w = RandomWalk::new(50.0, 5.0).clamped(0.0, 100.0);
        let mut r = rng();
        let mut moved = false;
        for _ in 0..1000 {
            let v = w.next_value(&mut r).as_f64().unwrap();
            assert!((0.0..=100.0).contains(&v));
            if (v - 50.0).abs() > 1.0 {
                moved = true;
            }
        }
        assert!(moved);
    }

    #[test]
    fn gaussian_moments() {
        let mut g = Gaussian {
            mean: 10.0,
            stddev: 2.0,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000)
            .map(|_| g.next_value(&mut r).as_f64().unwrap())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn zipf_is_skewed_toward_low_keys() {
        let z = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Key 0 should dominate clearly at s=1.2.
        assert!(counts[0] as f64 / 50_000.0 > 0.15);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0u64; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.1).abs() < 0.02, "frac={frac}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn choice_draws_from_options() {
        let mut c = Choice {
            options: vec![Value::str("a"), Value::str("b")],
        };
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(c.next_value(&mut r).as_str().unwrap().to_string());
        }
        assert_eq!(seen.len(), 2);
    }
}
