//! Trace capture and replay.
//!
//! Generated streams can be persisted to a simple line-oriented text format
//! and replayed later, so experiments can be re-run bit-identically without
//! regenerating (and so users can import their own traces). The format is
//! hand-rolled (no serialization-format crate is in the approved dependency
//! set):
//!
//! ```text
//! quill-trace v1
//! schema: name:type,name:type,...
//! <seq>\t<ts>\t<v1>\t<v2>...
//! ```
//!
//! String values are escaped (`\t`, `\n`, `\r`, `\\`); `Null` is the bare token
//! `\N` (as in classic database dump formats).

use crate::source::GeneratedStream;
use quill_engine::prelude::{ClockTracker, Event, FieldType, Row, Schema, Timestamp, Value};
use std::fmt;
use std::path::Path;

/// Errors raised while encoding/decoding traces.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a valid v1 trace.
    Format(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(msg) => write!(f, "trace format error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

const MAGIC: &str = "quill-trace v1";
const NULL_TOKEN: &str = "\\N";

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => NULL_TOKEN.to_string(),
        Value::Int(i) => i.to_string(),
        // `{:?}` prints floats with full roundtrip precision.
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => escape(s),
    }
}

fn decode_value(tok: &str, ty: FieldType) -> Result<Value, TraceError> {
    if tok == NULL_TOKEN {
        return Ok(Value::Null);
    }
    let parse_err = |what: &str| TraceError::Format(format!("bad {what}: `{tok}`"));
    Ok(match ty {
        FieldType::Int => Value::Int(tok.parse().map_err(|_| parse_err("int"))?),
        FieldType::Float => Value::Float(tok.parse().map_err(|_| parse_err("float"))?),
        FieldType::Bool => Value::Bool(tok.parse().map_err(|_| parse_err("bool"))?),
        FieldType::Str => Value::str(unescape(tok)),
    })
}

fn type_name(ty: FieldType) -> &'static str {
    match ty {
        FieldType::Int => "int",
        FieldType::Float => "float",
        FieldType::Str => "str",
        FieldType::Bool => "bool",
    }
}

fn parse_type(s: &str) -> Result<FieldType, TraceError> {
    Ok(match s {
        "int" => FieldType::Int,
        "float" => FieldType::Float,
        "str" => FieldType::Str,
        "bool" => FieldType::Bool,
        other => return Err(TraceError::Format(format!("unknown type `{other}`"))),
    })
}

/// Serialize a stream to the v1 text format.
pub fn encode(stream: &GeneratedStream) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str("schema: ");
    let fields: Vec<String> = stream
        .schema
        .fields()
        .iter()
        .map(|f| format!("{}:{}", escape(&f.name), type_name(f.ty)))
        .collect();
    out.push_str(&fields.join(","));
    out.push('\n');
    for e in &stream.events {
        out.push_str(&e.seq.to_string());
        out.push('\t');
        out.push_str(&e.ts.raw().to_string());
        for v in e.row.values() {
            out.push('\t');
            out.push_str(&encode_value(v));
        }
        out.push('\n');
    }
    out
}

/// Parse the v1 text format back into a stream (disorder statistics are
/// re-measured from the decoded arrival order).
pub fn decode(text: &str) -> Result<GeneratedStream, TraceError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => return Err(TraceError::Format(format!("bad magic: {other:?}"))),
    }
    let schema_line = lines
        .next()
        .ok_or_else(|| TraceError::Format("missing schema line".into()))?;
    let spec = schema_line
        .strip_prefix("schema: ")
        .ok_or_else(|| TraceError::Format("missing `schema: ` prefix".into()))?;
    let mut fields = Vec::new();
    if !spec.is_empty() {
        for part in spec.split(',') {
            let (name, ty) = part
                .rsplit_once(':')
                .ok_or_else(|| TraceError::Format(format!("bad field spec `{part}`")))?;
            fields.push((unescape(name), parse_type(ty)?));
        }
    }
    let schema =
        Schema::new(fields).map_err(|e| TraceError::Format(format!("invalid schema: {e}")))?;
    let types: Vec<FieldType> = schema.fields().iter().map(|f| f.ty).collect();

    let mut tracker = ClockTracker::new();
    let mut events = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split('\t');
        let bad = |what: &str| TraceError::Format(format!("line {}: {what}", lineno + 3));
        let seq: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad seq"))?;
        let ts: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad ts"))?;
        let mut vals = Vec::with_capacity(types.len());
        for &ty in &types {
            let tok = toks.next().ok_or_else(|| bad("missing value"))?;
            vals.push(decode_value(tok, ty)?);
        }
        if toks.next().is_some() {
            return Err(bad("trailing values"));
        }
        tracker.observe(Timestamp(ts));
        events.push(Event::new(ts, seq, vals.into_iter().collect::<Row>()));
    }
    Ok(GeneratedStream {
        schema,
        events,
        stats: tracker.stats(),
        description: "replayed trace".into(),
    })
}

/// Write a stream to a trace file.
pub fn save(stream: &GeneratedStream, path: impl AsRef<Path>) -> Result<(), TraceError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(stream))?;
    Ok(())
}

/// Read a stream from a trace file.
pub fn load(path: impl AsRef<Path>) -> Result<GeneratedStream, TraceError> {
    decode(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{stock, synthetic};

    #[test]
    fn roundtrip_preserves_events_exactly() {
        let s = synthetic::exponential(500, 10, 50.0, 1);
        let decoded = decode(&encode(&s)).unwrap();
        assert_eq!(decoded.schema, s.schema);
        assert_eq!(decoded.events, s.events);
        assert_eq!(decoded.stats, s.stats);
    }

    #[test]
    fn roundtrip_with_strings_and_nulls() {
        use quill_engine::prelude::*;
        let schema = Schema::new([("name", FieldType::Str), ("x", FieldType::Float)]).unwrap();
        let events = vec![
            Event::new(1, 0, Row::new([Value::str("tab\there"), Value::Float(1.5)])),
            Event::new(2, 1, Row::new([Value::Null, Value::Null])),
            Event::new(
                3,
                2,
                Row::new([Value::str("line\nbreak\\slash"), Value::Float(-0.25)]),
            ),
        ];
        let s = GeneratedStream {
            schema,
            events,
            stats: Default::default(),
            description: String::new(),
        };
        let decoded = decode(&encode(&s)).unwrap();
        assert_eq!(decoded.events, s.events);
    }

    #[test]
    fn float_precision_survives() {
        let s = stock::generate(&stock::StockConfig::default(), 300, 2);
        let decoded = decode(&encode(&s)).unwrap();
        assert_eq!(decoded.events, s.events);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("not a trace").is_err());
        assert!(decode("quill-trace v1\nnope").is_err());
        assert!(decode("quill-trace v1\nschema: a:int\nx\t1\t2").is_err());
        assert!(decode("quill-trace v1\nschema: a:wat\n").is_err());
        // Trailing values beyond the schema arity.
        assert!(decode("quill-trace v1\nschema: a:int\n0\t1\t2\t3").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("quill_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("t.trace");
        let s = synthetic::uniform(100, 10, 0, 30, 3);
        save(&s, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.events, s.events);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
