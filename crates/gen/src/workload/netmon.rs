//! Simulated network-monitoring counter stream.
//!
//! Substitution for a production monitoring feed (DESIGN.md §3): a fixed
//! fleet of hosts report byte/packet counters at a constant rate; transport
//! shares the monitored network, so delays are Markov-modulated (calm vs.
//! congestion bursts) and optionally *drift* upward over the run. This is
//! the adversarial non-stationary regime used by the adaptivity experiments
//! (R-F4, R-F5, R-F8).
//!
//! Schema: `host:int, bytes:float, packets:int`.

use crate::arrival::ConstantRate;
use crate::delay::{DelayModel, Drift, DriftShape, Exponential, MarkovBurst, Pareto};
use crate::payload::{RandomWalk, ValueGen};
use crate::source::{build_stream, GeneratedStream};
use quill_engine::prelude::{FieldType, Row, Schema, Timestamp, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Parameters of the monitoring feed.
#[derive(Debug, Clone)]
pub struct NetmonConfig {
    /// Number of reporting hosts.
    pub hosts: usize,
    /// Gap between consecutive reports (across all hosts).
    pub report_period: u64,
    /// Mean delay in the calm regime.
    pub calm_delay_mean: f64,
    /// Pareto scale of congestion-burst delays (shape 2.2).
    pub burst_scale: f64,
    /// Per-event probability of entering a burst.
    pub p_enter_burst: f64,
    /// Per-event probability of leaving a burst.
    pub p_exit_burst: f64,
    /// Optional drift of the whole delay scale over event time.
    pub drift: Option<DriftShape>,
}

impl Default for NetmonConfig {
    fn default() -> Self {
        NetmonConfig {
            hosts: 20,
            report_period: 5,
            calm_delay_mean: 25.0,
            burst_scale: 600.0,
            p_enter_burst: 0.01,
            p_exit_burst: 0.05,
            drift: None,
        }
    }
}

impl NetmonConfig {
    /// The drifting variant used by R-F4: delay scale triples linearly over
    /// the given horizon.
    pub fn with_linear_drift(mut self, horizon: u64) -> Self {
        self.drift = Some(DriftShape::Linear {
            from: 1.0,
            to: 3.0,
            horizon,
        });
        self
    }

    /// A step change in delay scale at the given time (R-F8 ablation).
    pub fn with_step_drift(mut self, at: u64) -> Self {
        self.drift = Some(DriftShape::Step {
            before: 1.0,
            after: 4.0,
            at,
        });
        self
    }
}

/// Schema of the monitoring stream.
pub fn schema() -> Schema {
    Schema::new([
        ("host", FieldType::Int),
        ("bytes", FieldType::Float),
        ("packets", FieldType::Int),
    ])
    .expect("static schema is valid")
}

/// Row index of the host id (grouping key).
pub const HOST_FIELD: usize = 0;
/// Row index of the byte counter.
pub const BYTES_FIELD: usize = 1;

/// Generate `n` counter reports.
pub fn generate(cfg: &NetmonConfig, n: usize, seed: u64) -> GeneratedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let hosts = cfg.hosts.max(1);
    let mut rates: Vec<RandomWalk> = (0..hosts)
        .map(|h| RandomWalk::new(1e6 * (1.0 + h as f64 / 4.0), 2e4).clamped(0.0, 1e9))
        .collect();
    let base: Box<dyn DelayModel> = Box::new(MarkovBurst::new(
        Box::new(Exponential {
            mean: cfg.calm_delay_mean,
        }),
        Box::new(Pareto {
            scale: cfg.burst_scale,
            shape: 2.2,
        }),
        cfg.p_enter_burst,
        cfg.p_exit_burst,
    ));
    let mut delay: Box<dyn DelayModel> = match cfg.drift {
        Some(shape) => Box::new(Drift { base, shape }),
        None => base,
    };
    build_stream(
        schema(),
        n,
        Timestamp(0),
        &mut ConstantRate {
            period: cfg.report_period,
        },
        delay.as_mut(),
        &mut rng,
        |rng, _, i| {
            let host = i % hosts;
            let bytes = rates[host].next_value(rng);
            let packets: i64 = rng.gen_range(10..10_000);
            Row::new([Value::Int(host as i64), bytes, Value::Int(packets)])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_reports() {
        let s = generate(&NetmonConfig::default(), 2000, 1);
        assert_eq!(s.len(), 2000);
        for e in &s.events {
            s.schema.validate(&e.row).expect("schema-valid row");
            assert!(e.row.f64(BYTES_FIELD).unwrap() >= 0.0);
        }
    }

    #[test]
    fn hosts_round_robin() {
        let cfg = NetmonConfig::default();
        let s = generate(&cfg, 2000, 2);
        let mut counts = vec![0u64; cfg.hosts];
        for e in &s.events {
            counts[e.row.get(HOST_FIELD).as_i64().unwrap() as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "round-robin imbalance: {min}..{max}");
    }

    #[test]
    fn drift_increases_late_run_delays() {
        // Compare measured lateness of the first vs. last third under a
        // strong linear drift. Lateness (clock − ts) understates raw delay
        // and the Pareto bursts add heavy-tailed noise, so the drift is made
        // steeper than the R-F4 default (1→3) to keep the signal clear of
        // the noise floor.
        let n = 30_000;
        let horizon = (n as u64) * 5; // event-time span
        let cfg = NetmonConfig {
            drift: Some(DriftShape::Linear {
                from: 1.0,
                to: 6.0,
                horizon,
            }),
            ..NetmonConfig::default()
        };
        let s = generate(&cfg, n, 3);
        // Re-derive delays by replaying the arrival order.
        let mut clock = 0u64;
        let (mut early, mut late) = (0u128, 0u128);
        let (mut n_early, mut n_late) = (0u64, 0u64);
        let cutoff_lo = horizon / 3;
        let cutoff_hi = 2 * horizon / 3;
        for e in &s.events {
            let d = clock.saturating_sub(e.ts.raw());
            clock = clock.max(e.ts.raw());
            if e.ts.raw() < cutoff_lo {
                early += d as u128;
                n_early += 1;
            } else if e.ts.raw() > cutoff_hi {
                late += d as u128;
                n_late += 1;
            }
        }
        let early_mean = early as f64 / n_early.max(1) as f64;
        let late_mean = late as f64 / n_late.max(1) as f64;
        assert!(
            late_mean > early_mean * 1.5,
            "drift not visible: early={early_mean} late={late_mean}"
        );
    }

    #[test]
    fn bursty_stream_has_heavy_tail() {
        let s = generate(&NetmonConfig::default(), 20_000, 4);
        assert!(s.stats.max_delay.raw() as f64 > 10.0 * s.stats.mean_delay());
    }
}
