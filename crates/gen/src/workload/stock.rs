//! Simulated equity trade stream.
//!
//! Substitution for real tick data (DESIGN.md §3): Poisson trade arrivals,
//! Zipf-skewed symbol popularity (a few hot symbols dominate), per-symbol
//! geometric-ish random-walk prices, log-normal transport delays.
//!
//! Schema: `symbol:int, price:float, volume:float`.
//! Canonical query: per-symbol VWAP (volume-weighted average price) over
//! sliding windows — implemented as sum(price·volume)/sum(volume), which the
//! quality experiments evaluate under relative-error targets (R-F9).

use crate::arrival::PoissonArrivals;
use crate::delay::LogNormal;
use crate::payload::{RandomWalk, ValueGen, Zipf};
use crate::source::{build_stream, GeneratedStream};
use quill_engine::prelude::{FieldType, Row, Schema, Timestamp, Value};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Parameters of the simulated market feed.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of distinct symbols.
    pub symbols: usize,
    /// Zipf exponent of symbol popularity.
    pub zipf_exponent: f64,
    /// Mean gap between trades in time units.
    pub mean_gap: f64,
    /// Log-normal delay location parameter.
    pub delay_mu: f64,
    /// Log-normal delay scale parameter.
    pub delay_sigma: f64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            symbols: 50,
            zipf_exponent: 1.1,
            mean_gap: 5.0,
            delay_mu: 3.5, // median delay e^3.5 ≈ 33
            delay_sigma: 0.9,
        }
    }
}

/// Schema of the trade stream.
pub fn schema() -> Schema {
    Schema::new([
        ("symbol", FieldType::Int),
        ("price", FieldType::Float),
        ("volume", FieldType::Float),
    ])
    .expect("static schema is valid")
}

/// Row index of the symbol (grouping key).
pub const SYMBOL_FIELD: usize = 0;
/// Row index of the trade price.
pub const PRICE_FIELD: usize = 1;
/// Row index of the trade volume.
pub const VOLUME_FIELD: usize = 2;

/// Generate `n` trades.
pub fn generate(cfg: &StockConfig, n: usize, seed: u64) -> GeneratedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let symbols = cfg.symbols.max(1);
    let zipf = Zipf::new(symbols, cfg.zipf_exponent);
    let mut prices: Vec<RandomWalk> = (0..symbols)
        .map(|s| RandomWalk::new(20.0 + 5.0 * (s as f64).sqrt(), 0.05).clamped(1.0, 10_000.0))
        .collect();
    let mut delay = LogNormal {
        mu: cfg.delay_mu,
        sigma: cfg.delay_sigma,
    };
    build_stream(
        schema(),
        n,
        Timestamp(0),
        &mut PoissonArrivals {
            mean_gap: cfg.mean_gap,
        },
        &mut delay,
        &mut rng,
        |rng, _, _| {
            let sym = zipf.sample(rng);
            let price = prices[sym].next_value(rng);
            // Volume: log-normal-ish positive quantity with occasional
            // block trades.
            let base: f64 = rng.gen_range(1.0..100.0);
            let block: bool = rng.gen_bool(0.01);
            let volume = if block { base * 100.0 } else { base };
            Row::new([Value::Int(sym as i64), price, Value::Float(volume)])
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_trades() {
        let s = generate(&StockConfig::default(), 2000, 1);
        assert_eq!(s.len(), 2000);
        for e in &s.events {
            s.schema.validate(&e.row).expect("schema-valid row");
            assert!(e.row.f64(PRICE_FIELD).unwrap() >= 1.0);
            assert!(e.row.f64(VOLUME_FIELD).unwrap() > 0.0);
        }
    }

    #[test]
    fn symbol_popularity_is_skewed() {
        let cfg = StockConfig::default();
        let s = generate(&cfg, 20_000, 2);
        let mut counts = vec![0u64; cfg.symbols];
        for e in &s.events {
            counts[e.row.get(SYMBOL_FIELD).as_i64().unwrap() as usize] += 1;
        }
        let hottest = *counts.iter().max().unwrap();
        let median = {
            let mut c = counts.clone();
            c.sort();
            c[c.len() / 2]
        };
        assert!(hottest > median * 5, "hot={hottest} median={median}");
    }

    #[test]
    fn stream_has_moderate_disorder() {
        let s = generate(&StockConfig::default(), 10_000, 3);
        let r = s.stats.disorder_ratio();
        assert!(r > 0.3, "ratio={r}");
    }

    #[test]
    fn prices_follow_continuous_walks_per_symbol() {
        let s = generate(&StockConfig::default(), 10_000, 4);
        // Reconstruct per-symbol price paths in event-time order and check
        // step sizes stay small (walk property survives the shuffle).
        let mut by_symbol: std::collections::HashMap<i64, Vec<(u64, f64)>> =
            std::collections::HashMap::new();
        for e in &s.events {
            by_symbol
                .entry(e.row.get(SYMBOL_FIELD).as_i64().unwrap())
                .or_default()
                .push((e.ts.raw(), e.row.f64(PRICE_FIELD).unwrap()));
        }
        for path in by_symbol.values_mut() {
            path.sort_by_key(|&(t, _)| t);
            for w in path.windows(2) {
                assert!((w[1].1 - w[0].1).abs() < 1.0, "price jumped {w:?}");
            }
        }
    }
}
