//! Controlled single-source synthetic streams.
//!
//! Used by the parameter sweeps (R-F2, R-F3): one source, constant arrival
//! rate, a single delay model, and a Gaussian payload field — so the delay
//! distribution is the *only* experimental variable.

use crate::arrival::ConstantRate;
use crate::delay::{DelayModel, Exponential, Pareto, UniformDelay};
use crate::payload::{Gaussian, ValueGen};
use crate::source::{build_stream, GeneratedStream};
use quill_engine::prelude::{FieldType, Row, Schema, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema of synthetic streams: a single numeric measurement.
pub fn schema() -> Schema {
    Schema::new([("value", FieldType::Float)]).expect("static schema is valid")
}

/// Generate with an arbitrary delay model.
pub fn with_delay(n: usize, period: u64, delay: &mut dyn DelayModel, seed: u64) -> GeneratedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut payload = Gaussian {
        mean: 100.0,
        stddev: 15.0,
    };
    build_stream(
        schema(),
        n,
        Timestamp(0),
        &mut ConstantRate { period },
        delay,
        &mut rng,
        |rng, _, _| Row::new([payload.next_value(rng)]),
    )
}

/// Exponentially delayed stream (light tail).
pub fn exponential(n: usize, period: u64, mean_delay: f64, seed: u64) -> GeneratedStream {
    with_delay(n, period, &mut Exponential { mean: mean_delay }, seed)
}

/// Pareto/Lomax delayed stream (heavy tail).
pub fn pareto(n: usize, period: u64, scale: f64, shape: f64, seed: u64) -> GeneratedStream {
    with_delay(n, period, &mut Pareto { scale, shape }, seed)
}

/// Uniformly delayed stream (bounded disorder, as in classic K-slack
/// analyses).
pub fn uniform(n: usize, period: u64, lo: u64, hi: u64, seed: u64) -> GeneratedStream {
    with_delay(n, period, &mut UniformDelay { lo, hi }, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_stream_has_expected_mean_delay() {
        let s = exponential(20_000, 10, 100.0, 11);
        // Mean measured delay is mean residual disorder, smaller than the
        // transport delay mean (in-order arrivals contribute 0), but the max
        // should be on the order of several means.
        assert!(s.stats.max_delay.raw() > 300);
        assert!(s.stats.disorder_ratio() > 0.5);
    }

    #[test]
    fn uniform_stream_delay_is_bounded() {
        let s = uniform(5000, 10, 0, 50, 12);
        // Max disorder delay can never exceed the delay bound.
        assert!(s.stats.max_delay.raw() <= 50);
    }

    #[test]
    fn pareto_tail_dominates_exponential() {
        let e = exponential(20_000, 10, 100.0, 13);
        let p = pareto(20_000, 10, 200.0, 3.0, 13); // same mean delay (100)
        assert!(p.stats.max_delay > e.stats.max_delay);
    }

    #[test]
    fn payload_is_gaussian_around_100() {
        let s = exponential(10_000, 10, 50.0, 14);
        let mean: f64 = s.events.iter().filter_map(|e| e.row.f64(0)).sum::<f64>() / s.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }
}
