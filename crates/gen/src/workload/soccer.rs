//! Simulated soccer player-sensor workload.
//!
//! Substitution for DEBS'13-style real sensor data (see DESIGN.md §3): a
//! number of players each carry a position sensor that samples at a fixed
//! rate; sensor radio links exhibit bursty, heavy-tailed delays and the
//! per-sensor streams are multiplexed at a single receiver. The result is a
//! high-rate stream with substantial disorder — the same shape as the real
//! data this literature evaluates on.
//!
//! Schema: `sensor:int, player:int, x:float, y:float, speed:float`.
//! Canonical query: per-player mean speed over sliding windows.

use crate::delay::{Exponential, MarkovBurst, Pareto};
use crate::payload::{RandomWalk, ValueGen};
use crate::source::{delay_and_shuffle, GeneratedStream, SourceEvent};
use quill_engine::prelude::{FieldType, Row, Schema, Timestamp, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the simulated match.
#[derive(Debug, Clone)]
pub struct SoccerConfig {
    /// Number of players (each with one sensor).
    pub players: usize,
    /// Sensor sampling period in time units.
    pub sample_period: u64,
    /// Mean radio delay in the calm regime.
    pub calm_delay_mean: f64,
    /// Pareto scale of the burst regime (shape fixed at 2.5).
    pub burst_scale: f64,
    /// Per-event probability of a sensor entering a burst.
    pub p_enter_burst: f64,
    /// Per-event probability of leaving a burst.
    pub p_exit_burst: f64,
    /// Field dimensions (meters).
    pub field: (f64, f64),
}

impl Default for SoccerConfig {
    fn default() -> Self {
        SoccerConfig {
            players: 16,
            sample_period: 50,
            calm_delay_mean: 30.0,
            burst_scale: 900.0,
            p_enter_burst: 0.02,
            p_exit_burst: 0.10,
            field: (105.0, 68.0),
        }
    }
}

/// Schema of the soccer stream.
pub fn schema() -> Schema {
    Schema::new([
        ("sensor", FieldType::Int),
        ("player", FieldType::Int),
        ("x", FieldType::Float),
        ("y", FieldType::Float),
        ("speed", FieldType::Float),
    ])
    .expect("static schema is valid")
}

/// Row index of the player id (grouping key for per-player queries).
pub const PLAYER_FIELD: usize = 1;
/// Row index of the speed measurement.
pub const SPEED_FIELD: usize = 4;

/// Generate `n` total sensor readings across all players.
pub fn generate(cfg: &SoccerConfig, n: usize, seed: u64) -> GeneratedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let players = cfg.players.max(1);
    let per_player = n / players + usize::from(!n.is_multiple_of(players));

    // Per-player motion state.
    struct PlayerState {
        x: RandomWalk,
        y: RandomWalk,
        last: Option<(f64, f64)>,
    }
    let mut states: Vec<PlayerState> = (0..players)
        .map(|p| PlayerState {
            x: RandomWalk::new(cfg.field.0 * (p as f64 + 0.5) / players as f64, 0.9)
                .clamped(0.0, cfg.field.0),
            y: RandomWalk::new(cfg.field.1 / 2.0, 0.9).clamped(0.0, cfg.field.1),
            last: None,
        })
        .collect();

    // Source events in global timestamp order: round-robin across sensors
    // with per-sensor phase offsets, so sources interleave like real
    // multiplexed links.
    let mut source_events: Vec<SourceEvent> = Vec::with_capacity(n);
    'outer: for tick in 0..per_player {
        for (p, st) in states.iter_mut().enumerate() {
            if source_events.len() >= n {
                break 'outer;
            }
            let phase = (p as u64 * cfg.sample_period) / players as u64;
            let ts = Timestamp(tick as u64 * cfg.sample_period + phase);
            let x =
                st.x.next_value(&mut rng)
                    .as_f64()
                    .expect("walk yields floats");
            let y =
                st.y.next_value(&mut rng)
                    .as_f64()
                    .expect("walk yields floats");
            let speed = match st.last {
                Some((px, py)) => {
                    let d = ((x - px).powi(2) + (y - py).powi(2)).sqrt();
                    // meters per sample scaled to m/s.
                    d * 1000.0 / cfg.sample_period as f64
                }
                None => 0.0,
            };
            st.last = Some((x, y));
            source_events.push((
                ts,
                Row::new([
                    Value::Int(p as i64),
                    Value::Int(p as i64),
                    Value::Float(x),
                    Value::Float(y),
                    Value::Float(speed),
                ]),
            ));
        }
    }
    // Timestamps from the round-robin are already monotone per tick but the
    // phase offsets can locally swap order across players; normalize.
    source_events.sort_by_key(|(ts, _)| *ts);

    let mut delay = MarkovBurst::new(
        Box::new(Exponential {
            mean: cfg.calm_delay_mean,
        }),
        Box::new(Pareto {
            scale: cfg.burst_scale,
            shape: 2.5,
        }),
        cfg.p_enter_burst,
        cfg.p_exit_burst,
    );
    delay_and_shuffle(
        schema(),
        source_events,
        &mut delay,
        &mut rng,
        format!("soccer({} players, period={})", players, cfg.sample_period),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_valid_rows() {
        let s = generate(&SoccerConfig::default(), 1000, 1);
        assert_eq!(s.len(), 1000);
        for e in &s.events {
            s.schema.validate(&e.row).expect("schema-valid row");
        }
    }

    #[test]
    fn positions_stay_on_field() {
        let cfg = SoccerConfig::default();
        let s = generate(&cfg, 5000, 2);
        for e in &s.events {
            let x = e.row.f64(2).unwrap();
            let y = e.row.f64(3).unwrap();
            assert!((0.0..=cfg.field.0).contains(&x));
            assert!((0.0..=cfg.field.1).contains(&y));
        }
    }

    #[test]
    fn speeds_are_nonnegative_and_bounded() {
        let s = generate(&SoccerConfig::default(), 5000, 3);
        for e in &s.events {
            let v = e.row.f64(SPEED_FIELD).unwrap();
            assert!(v >= 0.0);
            assert!(v < 120.0, "implausible speed {v}"); // walk step bound
        }
    }

    #[test]
    fn all_players_emit() {
        let cfg = SoccerConfig::default();
        let s = generate(&cfg, 3200, 4);
        let mut seen = std::collections::HashSet::new();
        for e in &s.events {
            seen.insert(e.row.get(PLAYER_FIELD).as_i64().unwrap());
        }
        assert_eq!(seen.len(), cfg.players);
    }

    #[test]
    fn stream_is_heavily_disordered() {
        let s = generate(&SoccerConfig::default(), 10_000, 5);
        assert!(
            s.stats.disorder_ratio() > 0.1,
            "ratio={}",
            s.stats.disorder_ratio()
        );
        // Bursty Pareto delays produce tails far beyond the calm mean.
        assert!(s.stats.max_delay.raw() > 500, "max={}", s.stats.max_delay);
    }
}
