//! Simulated real-world workloads.
//!
//! These stand in for the proprietary/unavailable datasets typically used in
//! this line of work (see DESIGN.md §3): each exercises the same code paths
//! — keyed windowed aggregation over a multiplexed, delay-disordered stream —
//! with delay regimes chosen to match the original data's character:
//!
//! * [`soccer`] — high-rate multiplexed player sensors with bursty radio
//!   delays (heavy disorder, stand-in for DEBS'13-style sensor data);
//! * [`stock`] — Poisson trade stream with Zipf-skewed symbols and
//!   log-normal delays (moderate disorder);
//! * [`netmon`] — constant-rate monitoring counters with Markov-modulated
//!   burst delays and optional drift (non-stationary; the adaptive-buffer
//!   stress test);
//! * [`synthetic`] — plain single-source streams with a chosen delay model
//!   (the controlled sweeps of R-F2/R-F3).

pub mod netmon;
pub mod soccer;
pub mod stock;
pub mod synthetic;

use crate::source::GeneratedStream;

/// A named workload generator the experiment harness can enumerate.
pub struct Workload {
    /// Stable identifier used in experiment tables ("soccer", "stock", ...).
    pub name: &'static str,
    /// Generator: `(events, seed) -> stream`.
    pub generate: fn(usize, u64) -> GeneratedStream,
}

/// The standard workload suite used across experiments.
pub fn standard_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "soccer",
            generate: |n, s| soccer::generate(&soccer::SoccerConfig::default(), n, s),
        },
        Workload {
            name: "stock",
            generate: |n, s| stock::generate(&stock::StockConfig::default(), n, s),
        },
        Workload {
            name: "netmon",
            generate: |n, s| netmon::generate(&netmon::NetmonConfig::default(), n, s),
        },
        Workload {
            name: "synthetic-exp",
            generate: |n, s| synthetic::exponential(n, 10, 100.0, s),
        },
        Workload {
            name: "synthetic-pareto",
            generate: |n, s| synthetic::pareto(n, 10, 200.0, 3.0, s),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_generates_nonempty_disordered_streams() {
        for w in standard_suite() {
            let s = (w.generate)(2000, 42);
            assert_eq!(s.len(), 2000, "{}", w.name);
            assert!(
                s.stats.disorder_ratio() > 0.01,
                "{} should be disordered, ratio={}",
                w.name,
                s.stats.disorder_ratio()
            );
            // Schema validates every event row.
            for e in s.events.iter().take(50) {
                s.schema
                    .validate(&e.row)
                    .unwrap_or_else(|err| panic!("{}: invalid row {}: {err}", w.name, e.row));
            }
        }
    }

    #[test]
    fn suite_is_seed_reproducible() {
        for w in standard_suite() {
            let a = (w.generate)(500, 7);
            let b = (w.generate)(500, 7);
            assert_eq!(a.events, b.events, "{} not reproducible", w.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        for w in standard_suite() {
            let a = (w.generate)(500, 1);
            let b = (w.generate)(500, 2);
            assert_ne!(a.events, b.events, "{} ignored seed", w.name);
        }
    }
}
