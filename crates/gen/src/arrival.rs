//! Arrival processes: how event-time timestamps advance at the source.
//!
//! An [`ArrivalProcess`] generates a monotone non-decreasing sequence of
//! event timestamps. (Disorder is introduced *after* timestamp assignment,
//! by the delay models — sources are always locally ordered.)

use quill_engine::prelude::{TimeDelta, Timestamp};
use rand::Rng;

/// Generator of monotone event timestamps.
pub trait ArrivalProcess: Send {
    /// The next inter-arrival gap (>= 0).
    fn next_gap(&mut self, rng: &mut dyn rand::RngCore) -> TimeDelta;

    /// Short description for workload tables.
    fn describe(&self) -> String;
}

/// Fixed-rate arrivals: one event every `period` time units.
#[derive(Debug, Clone, Copy)]
pub struct ConstantRate {
    /// Gap between consecutive events (> 0 for a progressing clock).
    pub period: u64,
}

impl ArrivalProcess for ConstantRate {
    fn next_gap(&mut self, _rng: &mut dyn rand::RngCore) -> TimeDelta {
        TimeDelta(self.period)
    }
    fn describe(&self) -> String {
        format!("constant(period={})", self.period)
    }
}

/// Poisson arrivals with the given mean inter-arrival gap (exponential
/// gaps, rounded to integer time units).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Mean gap between events (> 0).
    pub mean_gap: f64,
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut dyn rand::RngCore) -> TimeDelta {
        let u: f64 = rng.gen::<f64>();
        let u = (1.0 - u).max(f64::MIN_POSITIVE);
        TimeDelta::from_f64(-self.mean_gap.max(0.0) * u.ln())
    }
    fn describe(&self) -> String {
        format!("poisson(mean_gap={})", self.mean_gap)
    }
}

/// Materialize the first `n` timestamps of a process starting at `start`.
pub fn timestamps(
    process: &mut dyn ArrivalProcess,
    rng: &mut dyn rand::RngCore,
    start: Timestamp,
    n: usize,
) -> Vec<Timestamp> {
    let mut out = Vec::with_capacity(n);
    let mut t = start;
    for i in 0..n {
        if i > 0 {
            t += process.next_gap(rng);
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_rate_is_evenly_spaced() {
        let mut p = ConstantRate { period: 10 };
        let mut rng = StdRng::seed_from_u64(1);
        let ts = timestamps(&mut p, &mut rng, Timestamp(5), 4);
        assert_eq!(
            ts,
            vec![Timestamp(5), Timestamp(15), Timestamp(25), Timestamp(35)]
        );
    }

    #[test]
    fn poisson_mean_gap_converges() {
        let mut p = PoissonArrivals { mean_gap: 20.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let ts = timestamps(&mut p, &mut rng, Timestamp(0), 20_000);
        let span = ts.last().unwrap().raw() - ts[0].raw();
        let mean_gap = span as f64 / (ts.len() - 1) as f64;
        assert!((mean_gap - 20.0).abs() < 1.0, "mean_gap={mean_gap}");
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut p = PoissonArrivals { mean_gap: 3.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let ts = timestamps(&mut p, &mut rng, Timestamp(0), 1000);
        for w in ts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn empty_request_yields_empty() {
        let mut p = ConstantRate { period: 1 };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(timestamps(&mut p, &mut rng, Timestamp(0), 0).is_empty());
    }
}
