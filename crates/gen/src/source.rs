//! Assembling generated events into an out-of-order stream.
//!
//! The generator produces events in *source order* (monotone timestamps),
//! attaches a sampled transport delay to each, and then re-orders the batch
//! by arrival instant `ts + delay`. The resulting vector is the arrival-order
//! stream the query processor sees; sequence numbers are assigned in arrival
//! order. Disorder statistics are measured on the result so every workload
//! can be characterized exactly (table R-T1).

use crate::arrival::ArrivalProcess;
use crate::delay::DelayModel;
use quill_engine::prelude::{
    ClockTracker, DisorderStats, Event, Row, Schema, StreamElement, Timestamp,
};
use rand::RngCore;

/// A fully generated out-of-order stream plus its measured characteristics.
#[derive(Debug, Clone)]
pub struct GeneratedStream {
    /// Schema of event rows.
    pub schema: Schema,
    /// Events in arrival order (seq ascending).
    pub events: Vec<Event>,
    /// Measured disorder of the arrival sequence.
    pub stats: DisorderStats,
    /// Human-readable provenance (arrival + delay model descriptions).
    pub description: String,
}

impl GeneratedStream {
    /// The events wrapped as [`StreamElement`]s with a trailing `Flush`.
    pub fn elements(&self) -> Vec<StreamElement> {
        let mut v: Vec<StreamElement> = self
            .events
            .iter()
            .cloned()
            .map(StreamElement::Event)
            .collect();
        v.push(StreamElement::Flush);
        v
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event-time span (last timestamp − first timestamp in event time).
    pub fn time_span(&self) -> u64 {
        let min = self.events.iter().map(|e| e.ts.raw()).min().unwrap_or(0);
        let max = self.events.iter().map(|e| e.ts.raw()).max().unwrap_or(0);
        max - min
    }
}

/// One pre-delay event produced by a source: `(event time, row)`.
pub type SourceEvent = (Timestamp, Row);

/// Build an arrival-ordered stream from already-timestamped source events by
/// sampling a delay per event and re-sorting by arrival instant.
///
/// Ties in arrival instant are broken by source order (FIFO links).
pub fn delay_and_shuffle(
    schema: Schema,
    source_events: Vec<SourceEvent>,
    delay: &mut dyn DelayModel,
    rng: &mut dyn RngCore,
    description: impl Into<String>,
) -> GeneratedStream {
    // (arrival instant, source index, ts, row)
    let mut tagged: Vec<(Timestamp, usize, Timestamp, Row)> = source_events
        .into_iter()
        .enumerate()
        .map(|(i, (ts, row))| {
            let d = delay.sample(rng, ts);
            (ts + d, i, ts, row)
        })
        .collect();
    tagged.sort_by_key(|&(arrival, idx, _, _)| (arrival, idx));
    let mut tracker = ClockTracker::new();
    let events: Vec<Event> = tagged
        .into_iter()
        .enumerate()
        .map(|(seq, (_, _, ts, row))| {
            tracker.observe(ts);
            Event::new(ts, seq as u64, row)
        })
        .collect();
    GeneratedStream {
        schema,
        events,
        stats: tracker.stats(),
        description: description.into(),
    }
}

/// Convenience: generate `n` events from an arrival process and a row
/// factory, then delay-and-shuffle them.
///
/// `row_fn(rng, ts, i)` produces the i-th event's payload.
pub fn build_stream(
    schema: Schema,
    n: usize,
    start: Timestamp,
    arrival: &mut dyn ArrivalProcess,
    delay: &mut dyn DelayModel,
    rng: &mut dyn RngCore,
    mut row_fn: impl FnMut(&mut dyn RngCore, Timestamp, usize) -> Row,
) -> GeneratedStream {
    let mut t = start;
    let mut source_events = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 {
            t += arrival.next_gap(rng);
        }
        let row = row_fn(rng, t, i);
        source_events.push((t, row));
    }
    let description = format!("arrival={}, delay={}", arrival.describe(), delay.describe());
    delay_and_shuffle(schema, source_events, delay, rng, description)
}

/// Merge several independently generated streams into one arrival-ordered
/// stream (e.g. many sensors feeding one query). Arrival order is
/// reconstructed from each stream's internal order by interleaving
/// proportionally; timestamps are preserved and sequence numbers reassigned.
///
/// Because each input is already in its own arrival order and delays were
/// sampled against a shared event-time axis, a global arrival order is
/// recovered by sorting on the per-event arrival rank within the union.
pub fn merge_sources(schema: Schema, sources: Vec<GeneratedStream>) -> GeneratedStream {
    // Reconstruct each event's arrival instant lower bound: within a stream,
    // arrival order == seq order, and each event arrived no earlier than its
    // own timestamp. We interleave by (per-stream position scaled to event
    // time) using the event's own ts + measured delay is unavailable, so the
    // faithful merge re-sorts by the original arrival instant, which we
    // approximate by per-stream order index mapped to the stream clock at
    // that point. Simpler and exact enough for workload construction: tag
    // each event with the running max timestamp ("clock") of its stream at
    // arrival, which is a monotone proxy for the arrival instant, then merge
    // by (clock, ts).
    let mut tagged: Vec<(u64, u64, usize, Event)> = Vec::new();
    for (sidx, s) in sources.into_iter().enumerate() {
        let mut clock = 0u64;
        for e in s.events {
            clock = clock.max(e.ts.raw());
            tagged.push((clock, e.seq, sidx, e));
        }
    }
    tagged.sort_by_key(|&(clock, seq, sidx, _)| (clock, seq, sidx));
    let mut tracker = ClockTracker::new();
    let events: Vec<Event> = tagged
        .into_iter()
        .enumerate()
        .map(|(seq, (_, _, _, mut e))| {
            tracker.observe(e.ts);
            e.seq = seq as u64;
            e
        })
        .collect();
    GeneratedStream {
        schema,
        events,
        stats: tracker.stats(),
        description: "merged".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ConstantRate;
    use crate::delay::{Constant, Exponential};
    use quill_engine::prelude::{FieldType, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new([("v", FieldType::Float)]).unwrap()
    }

    fn simple_stream(n: usize, mean_delay: f64, seed: u64) -> GeneratedStream {
        let mut rng = StdRng::seed_from_u64(seed);
        build_stream(
            schema(),
            n,
            Timestamp(0),
            &mut ConstantRate { period: 10 },
            &mut Exponential { mean: mean_delay },
            &mut rng,
            |_, ts, _| Row::new([Value::Float(ts.raw() as f64)]),
        )
    }

    #[test]
    fn zero_delay_stream_is_ordered() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = build_stream(
            schema(),
            100,
            Timestamp(0),
            &mut ConstantRate { period: 5 },
            &mut Constant(0),
            &mut rng,
            |_, ts, _| Row::new([Value::Float(ts.raw() as f64)]),
        );
        assert_eq!(s.stats.out_of_order, 0);
        for w in s.events.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn constant_delay_preserves_order_too() {
        // Identical delay shifts all arrivals equally: still in order.
        let mut rng = StdRng::seed_from_u64(2);
        let s = build_stream(
            schema(),
            100,
            Timestamp(0),
            &mut ConstantRate { period: 5 },
            &mut Constant(1000),
            &mut rng,
            |_, ts, _| Row::new([Value::Float(ts.raw() as f64)]),
        );
        assert_eq!(s.stats.out_of_order, 0);
    }

    #[test]
    fn random_delays_create_disorder() {
        let s = simple_stream(5000, 50.0, 3);
        assert!(s.stats.out_of_order > 0, "expected disorder");
        assert!(
            s.stats.disorder_ratio() > 0.2,
            "ratio={}",
            s.stats.disorder_ratio()
        );
        assert!(s.stats.max_delay.raw() > 0);
    }

    #[test]
    fn seq_is_arrival_order_and_dense() {
        let s = simple_stream(1000, 30.0, 4);
        for (i, e) in s.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn all_source_events_survive() {
        let s = simple_stream(1000, 100.0, 5);
        assert_eq!(s.len(), 1000);
        // Each payload equals its own ts → set of ts values intact.
        let mut ts: Vec<u64> = s.events.iter().map(|e| e.ts.raw()).collect();
        ts.sort();
        let expected: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        assert_eq!(ts, expected);
    }

    #[test]
    fn elements_end_with_flush() {
        let s = simple_stream(10, 10.0, 6);
        let els = s.elements();
        assert_eq!(els.len(), 11);
        assert!(els.last().unwrap().is_flush());
    }

    #[test]
    fn reproducible_given_seed() {
        let a = simple_stream(500, 40.0, 7);
        let b = simple_stream(500, 40.0, 7);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn merge_sources_produces_dense_seq_and_union() {
        let a = simple_stream(100, 20.0, 8);
        let b = simple_stream(100, 20.0, 9);
        let merged = merge_sources(schema(), vec![a, b]);
        assert_eq!(merged.len(), 200);
        for (i, e) in merged.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn time_span_is_positive() {
        let s = simple_stream(100, 10.0, 10);
        assert_eq!(s.time_span(), 990);
    }
}
