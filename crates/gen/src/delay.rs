//! Tuple-delay models.
//!
//! A [`DelayModel`] decides, for each generated event, how long after its
//! event-time timestamp it becomes *visible* to the query processor — the
//! synthetic equivalent of network/transport delay, and the sole cause of
//! disorder in generated workloads. All samplers use inverse-transform or
//! Box–Muller sampling on top of `rand`'s uniform source, so no external
//! distribution crate is needed and sequences are fully reproducible from a
//! seed.
//!
//! Models can be non-stationary: [`DelayModel::sample`] receives the event's
//! timestamp, which [`Drift`] and [`MarkovBurst`] use to vary behaviour over
//! time — the adversarial regimes the adaptive buffer must track.

use quill_engine::prelude::{TimeDelta, Timestamp};
use rand::Rng;

/// A (possibly time-varying) distribution of tuple delays.
pub trait DelayModel: Send {
    /// Sample the delay for an event with the given timestamp.
    fn sample(&mut self, rng: &mut dyn rand::RngCore, ts: Timestamp) -> TimeDelta;

    /// Short human-readable description for workload tables.
    fn describe(&self) -> String;
}

/// Draw a uniform in the open interval (0, 1] — safe for `ln`.
fn u01(rng: &mut dyn rand::RngCore) -> f64 {
    let u: f64 = rng.gen();
    (1.0 - u).max(f64::MIN_POSITIVE)
}

/// One standard normal via Box–Muller.
fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    let u1 = u01(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Every event is delayed by exactly the same amount (zero = perfectly
/// ordered stream).
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub u64);

impl DelayModel for Constant {
    fn sample(&mut self, _rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        TimeDelta(self.0)
    }
    fn describe(&self) -> String {
        format!("constant({})", self.0)
    }
}

/// Uniform delay in `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        TimeDelta(rng.gen_range(self.lo..=self.hi.max(self.lo)))
    }
    fn describe(&self) -> String {
        format!("uniform({}, {})", self.lo, self.hi)
    }
}

/// Exponential delay with the given mean: the classic light-tailed network
/// delay model.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Mean delay in time units (> 0).
    pub mean: f64,
}

impl DelayModel for Exponential {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        TimeDelta::from_f64(-self.mean.max(0.0) * u01(rng).ln())
    }
    fn describe(&self) -> String {
        format!("exp(mean={})", self.mean)
    }
}

/// Lomax (Pareto type II) delay: heavy-tailed with support `[0, ∞)`.
/// Mean = `scale / (shape − 1)` for `shape > 1`; infinite for `shape <= 1`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Scale parameter (> 0).
    pub scale: f64,
    /// Tail index (> 0); smaller = heavier tail.
    pub shape: f64,
}

impl DelayModel for Pareto {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        let u = u01(rng);
        TimeDelta::from_f64(self.scale.max(0.0) * (u.powf(-1.0 / self.shape.max(1e-9)) - 1.0))
    }
    fn describe(&self) -> String {
        format!("pareto(scale={}, shape={})", self.scale, self.shape)
    }
}

/// Log-normal delay: `exp(mu + sigma·Z)`. Moderate tail, common fit for
/// measured one-way network delays.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal (>= 0).
    pub sigma: f64,
}

impl DelayModel for LogNormal {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        TimeDelta::from_f64((self.mu + self.sigma.max(0.0) * standard_normal(rng)).exp())
    }
    fn describe(&self) -> String {
        format!("lognormal(mu={}, sigma={})", self.mu, self.sigma)
    }
}

/// Truncated-at-zero normal delay.
#[derive(Debug, Clone, Copy)]
pub struct NormalDelay {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (>= 0).
    pub stddev: f64,
}

impl DelayModel for NormalDelay {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        TimeDelta::from_f64(self.mean + self.stddev.max(0.0) * standard_normal(rng))
    }
    fn describe(&self) -> String {
        format!("normal(mean={}, sd={})", self.mean, self.stddev)
    }
}

/// Mixture of two models: with probability `p_second`, sample from
/// `second`, else from `first`. Models e.g. "mostly fast, occasionally
/// retransmitted" traffic.
pub struct Bimodal {
    /// The common-case model.
    pub first: Box<dyn DelayModel>,
    /// The rare-case model.
    pub second: Box<dyn DelayModel>,
    /// Probability of drawing from `second` (clamped to `[0,1]`).
    pub p_second: f64,
}

impl DelayModel for Bimodal {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, ts: Timestamp) -> TimeDelta {
        let p: f64 = rng.gen();
        if p < self.p_second.clamp(0.0, 1.0) {
            self.second.sample(rng, ts)
        } else {
            self.first.sample(rng, ts)
        }
    }
    fn describe(&self) -> String {
        format!(
            "bimodal({}, {}, p={})",
            self.first.describe(),
            self.second.describe(),
            self.p_second
        )
    }
}

/// Two-state Markov-modulated delay: the stream alternates between a *calm*
/// and a *burst* regime, switching state per event with the given
/// probabilities. This is the canonical non-stationary stress test for
/// adaptive buffering: delays jump up sharply during bursts and fall back
/// after.
pub struct MarkovBurst {
    /// Delay model in the calm state.
    pub calm: Box<dyn DelayModel>,
    /// Delay model in the burst state.
    pub burst: Box<dyn DelayModel>,
    /// Per-event probability of entering a burst from calm.
    pub p_enter: f64,
    /// Per-event probability of leaving a burst.
    pub p_exit: f64,
    in_burst: bool,
}

impl MarkovBurst {
    /// Build in the calm state.
    pub fn new(
        calm: Box<dyn DelayModel>,
        burst: Box<dyn DelayModel>,
        p_enter: f64,
        p_exit: f64,
    ) -> MarkovBurst {
        MarkovBurst {
            calm,
            burst,
            p_enter,
            p_exit,
            in_burst: false,
        }
    }

    /// Whether the chain is currently in the burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

impl DelayModel for MarkovBurst {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, ts: Timestamp) -> TimeDelta {
        let flip: f64 = rng.gen();
        if self.in_burst {
            if flip < self.p_exit.clamp(0.0, 1.0) {
                self.in_burst = false;
            }
        } else if flip < self.p_enter.clamp(0.0, 1.0) {
            self.in_burst = true;
        }
        if self.in_burst {
            self.burst.sample(rng, ts)
        } else {
            self.calm.sample(rng, ts)
        }
    }
    fn describe(&self) -> String {
        format!(
            "markov-burst(calm={}, burst={}, p_enter={}, p_exit={})",
            self.calm.describe(),
            self.burst.describe(),
            self.p_enter,
            self.p_exit
        )
    }
}

/// Delays resampled from an empirical distribution (e.g. measured on a real
/// network and imported via the trace tools): each sample draws uniformly
/// from the provided observations, with optional linear interpolation
/// between adjacent sorted values for a smoother tail.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<u64>,
    /// Interpolate between adjacent observations instead of resampling
    /// exact values.
    pub interpolate: bool,
}

impl Empirical {
    /// Build from raw delay observations (any order; must be non-empty).
    pub fn new(mut observations: Vec<u64>) -> Empirical {
        assert!(!observations.is_empty(), "Empirical requires observations");
        observations.sort_unstable();
        Empirical {
            sorted: observations,
            interpolate: false,
        }
    }

    /// Enable interpolation between adjacent order statistics.
    pub fn interpolated(mut self) -> Empirical {
        self.interpolate = true;
        self
    }
}

impl DelayModel for Empirical {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, _ts: Timestamp) -> TimeDelta {
        let n = self.sorted.len();
        if !self.interpolate || n == 1 {
            let i = rng.gen_range(0..n);
            return TimeDelta(self.sorted[i]);
        }
        let u: f64 = rng.gen::<f64>() * (n - 1) as f64;
        let lo = u.floor() as usize;
        let frac = u - lo as f64;
        let a = self.sorted[lo] as f64;
        let b = self.sorted[(lo + 1).min(n - 1)] as f64;
        TimeDelta::from_f64(a + (b - a) * frac)
    }
    fn describe(&self) -> String {
        format!(
            "empirical(n={}, interp={})",
            self.sorted.len(),
            self.interpolate
        )
    }
}

/// How a [`Drift`] model's scale factor evolves over event time.
#[derive(Debug, Clone, Copy)]
pub enum DriftShape {
    /// Scale grows linearly from `from` to `to` across `[0, horizon]`.
    Linear {
        /// Initial scale factor.
        from: f64,
        /// Final scale factor at the horizon.
        to: f64,
        /// Event-time horizon over which to interpolate.
        horizon: u64,
    },
    /// Scale switches from `before` to `after` at `at`.
    Step {
        /// Scale before the switch.
        before: f64,
        /// Scale after the switch.
        after: f64,
        /// Switch time.
        at: u64,
    },
    /// Scale oscillates: `1 + amplitude·sin(2π·t/period)` (floored at 0).
    Sine {
        /// Oscillation amplitude.
        amplitude: f64,
        /// Oscillation period in time units.
        period: u64,
    },
}

/// Wraps a base model and scales its samples by a time-varying factor:
/// models slow drift (link degradation) or sudden regime change.
pub struct Drift {
    /// The underlying delay model.
    pub base: Box<dyn DelayModel>,
    /// The drift shape.
    pub shape: DriftShape,
}

impl Drift {
    /// Scale factor at the given event time.
    pub fn scale_at(&self, ts: Timestamp) -> f64 {
        let t = ts.raw();
        match self.shape {
            DriftShape::Linear { from, to, horizon } => {
                if horizon == 0 {
                    to
                } else {
                    let frac = (t as f64 / horizon as f64).min(1.0);
                    from + (to - from) * frac
                }
            }
            DriftShape::Step { before, after, at } => {
                if t < at {
                    before
                } else {
                    after
                }
            }
            DriftShape::Sine { amplitude, period } => {
                let ph = if period == 0 {
                    0.0
                } else {
                    2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64
                };
                (1.0 + amplitude * ph.sin()).max(0.0)
            }
        }
    }
}

impl DelayModel for Drift {
    fn sample(&mut self, rng: &mut dyn rand::RngCore, ts: Timestamp) -> TimeDelta {
        let base = self.base.sample(rng, ts).as_f64();
        TimeDelta::from_f64(base * self.scale_at(ts))
    }
    fn describe(&self) -> String {
        format!("drift({}, {:?})", self.base.describe(), self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sample_n(m: &mut dyn DelayModel, n: usize) -> Vec<f64> {
        let mut r = rng();
        (0..n)
            .map(|i| m.sample(&mut r, Timestamp(i as u64)).as_f64())
            .collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut m = Constant(7);
        assert!(sample_n(&mut m, 10).iter().all(|&d| d == 7.0));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut m = UniformDelay { lo: 5, hi: 15 };
        for d in sample_n(&mut m, 1000) {
            assert!((5.0..=15.0).contains(&d));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut m = Exponential { mean: 100.0 };
        let xs = sample_n(&mut m, 20_000);
        assert!((mean(&xs) - 100.0).abs() < 5.0, "mean={}", mean(&xs));
        assert!(xs.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn pareto_mean_matches_lomax_formula() {
        // Lomax mean = scale / (shape - 1) = 100 for scale=200, shape=3.
        let mut m = Pareto {
            scale: 200.0,
            shape: 3.0,
        };
        let xs = sample_n(&mut m, 100_000);
        assert!((mean(&xs) - 100.0).abs() < 10.0, "mean={}", mean(&xs));
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential() {
        let mut e = Exponential { mean: 100.0 };
        let mut p = Pareto {
            scale: 200.0,
            shape: 3.0,
        };
        let mut xe = sample_n(&mut e, 50_000);
        let mut xp = sample_n(&mut p, 50_000);
        xe.sort_by(|a, b| a.total_cmp(b));
        xp.sort_by(|a, b| a.total_cmp(b));
        let p999 = |v: &[f64]| v[(v.len() as f64 * 0.999) as usize];
        assert!(
            p999(&xp) > p999(&xe),
            "pareto p999 {} <= exp p999 {}",
            p999(&xp),
            p999(&xe)
        );
    }

    #[test]
    fn lognormal_is_positive_with_sane_median() {
        // Median of lognormal = exp(mu) = e^4 ≈ 54.6.
        let mut m = LogNormal {
            mu: 4.0,
            sigma: 0.5,
        };
        let mut xs = sample_n(&mut m, 20_000);
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[xs.len() / 2];
        assert!((median - 54.6).abs() < 5.0, "median={median}");
        assert!(xs[0] >= 0.0);
    }

    #[test]
    fn normal_truncates_at_zero() {
        let mut m = NormalDelay {
            mean: 1.0,
            stddev: 10.0,
        };
        assert!(sample_n(&mut m, 5000).iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn bimodal_mixes() {
        let mut m = Bimodal {
            first: Box::new(Constant(1)),
            second: Box::new(Constant(1000)),
            p_second: 0.3,
        };
        let xs = sample_n(&mut m, 10_000);
        let frac_big = xs.iter().filter(|&&d| d == 1000.0).count() as f64 / xs.len() as f64;
        assert!((frac_big - 0.3).abs() < 0.03, "frac={frac_big}");
    }

    #[test]
    fn markov_burst_alternates_and_is_sticky() {
        let mut m = MarkovBurst::new(Box::new(Constant(1)), Box::new(Constant(1000)), 0.01, 0.05);
        let xs = sample_n(&mut m, 50_000);
        let burst_frac = xs.iter().filter(|&&d| d == 1000.0).count() as f64 / xs.len() as f64;
        // Stationary burst probability = p_enter / (p_enter + p_exit) ≈ 1/6.
        assert!(
            (burst_frac - 1.0 / 6.0).abs() < 0.05,
            "burst_frac={burst_frac}"
        );
        // Bursts are sticky: consecutive identical values dominate.
        let switches = xs.windows(2).filter(|w| w[0] != w[1]).count() as f64 / xs.len() as f64;
        assert!(switches < 0.05, "switch rate {switches}");
    }

    #[test]
    fn linear_drift_scales_over_time() {
        let mut m = Drift {
            base: Box::new(Constant(100)),
            shape: DriftShape::Linear {
                from: 1.0,
                to: 3.0,
                horizon: 1000,
            },
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, Timestamp(0)).raw(), 100);
        assert_eq!(m.sample(&mut r, Timestamp(500)).raw(), 200);
        assert_eq!(m.sample(&mut r, Timestamp(1000)).raw(), 300);
        assert_eq!(m.sample(&mut r, Timestamp(99_999)).raw(), 300); // clamped
    }

    #[test]
    fn step_drift_switches_at_boundary() {
        let mut m = Drift {
            base: Box::new(Constant(10)),
            shape: DriftShape::Step {
                before: 1.0,
                after: 5.0,
                at: 100,
            },
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r, Timestamp(99)).raw(), 10);
        assert_eq!(m.sample(&mut r, Timestamp(100)).raw(), 50);
    }

    #[test]
    fn sine_drift_oscillates_nonnegative() {
        let m = Drift {
            base: Box::new(Constant(10)),
            shape: DriftShape::Sine {
                amplitude: 2.0,
                period: 100,
            },
        };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in 0..200 {
            let s = m.scale_at(Timestamp(t));
            assert!(s >= 0.0);
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert!(hi > 2.5 && lo == 0.0);
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut a = Exponential { mean: 50.0 };
        let mut b = Exponential { mean: 50.0 };
        assert_eq!(sample_n(&mut a, 100), sample_n(&mut b, 100));
    }

    #[test]
    fn describe_mentions_parameters() {
        assert!(Exponential { mean: 5.0 }.describe().contains('5'));
        assert!(Pareto {
            scale: 1.0,
            shape: 2.0
        }
        .describe()
        .contains("pareto"));
    }
}

#[cfg(test)]
mod empirical_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_resamples_only_observed_values() {
        let mut m = Empirical::new(vec![5, 100, 7]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let d = m.sample(&mut rng, Timestamp(0)).raw();
            assert!([5, 7, 100].contains(&d), "unobserved value {d}");
        }
        assert!(m.describe().contains("n=3"));
    }

    #[test]
    fn interpolated_fills_gaps_within_range() {
        let mut m = Empirical::new(vec![0, 100]).interpolated();
        let mut rng = StdRng::seed_from_u64(2);
        let mut strictly_inside = false;
        for _ in 0..500 {
            let d = m.sample(&mut rng, Timestamp(0)).raw();
            assert!(d <= 100);
            if d != 0 && d != 100 {
                strictly_inside = true;
            }
        }
        assert!(
            strictly_inside,
            "interpolation never produced interior values"
        );
    }

    #[test]
    fn empirical_preserves_distribution_shape() {
        // Resampling a big exponential sample reproduces its quantiles.
        let mut rng = StdRng::seed_from_u64(3);
        let mut exp = Exponential { mean: 100.0 };
        let obs: Vec<u64> = (0..20_000)
            .map(|i| exp.sample(&mut rng, Timestamp(i)).raw())
            .collect();
        let mut m = Empirical::new(obs.clone());
        let resampled: Vec<u64> = (0..20_000)
            .map(|i| m.sample(&mut rng, Timestamp(i)).raw())
            .collect();
        let q = |mut v: Vec<u64>, p: f64| {
            v.sort_unstable();
            v[(p * (v.len() - 1) as f64) as usize]
        };
        for &p in &[0.5, 0.9, 0.99] {
            let a = q(obs.clone(), p) as f64;
            let b = q(resampled.clone(), p) as f64;
            assert!((a - b).abs() / a.max(1.0) < 0.1, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "requires observations")]
    fn empirical_rejects_empty() {
        let _ = Empirical::new(vec![]);
    }
}
