//! Adversarial stream mutators: seeded perturbations applied *after* the
//! delay/arrival pipeline ([`crate::delay`] / [`crate::arrival`]) produced an
//! arrival-ordered stream.
//!
//! The delay models bend streams within a declared statistical regime; the
//! mutators here deliberately step outside it — duplicated deliveries,
//! stragglers reordered past any plausible delay bound, clock surges that
//! tempt watermark regressions, source dropout, bursty local reversals,
//! heavy-hitter key skew and equal-timestamp tie clusters. They exist for the
//! `quill-sim` differential harness: both the system under test and the
//! reference oracle see the *same* mutated vector, so any disagreement is an
//! engine bug, not a modeling artifact.
//!
//! All mutators draw randomness exclusively from the caller's seeded
//! [`RngCore`], keeping every perturbed stream bit-reproducible. After a
//! mutator pipeline runs, [`reseq`] reassigns sequence numbers to the new
//! arrival order (seq = arrival index), restoring the invariant every
//! generated stream upholds.

use quill_engine::prelude::{Event, Row, Timestamp, Value};
use rand::{Rng, RngCore};

/// One composable adversarial perturbation of an arrival-ordered stream.
///
/// Implementations mutate `events` in place; arrival order is the vector
/// order. Callers are expected to [`reseq`] after the full pipeline (or use
/// [`apply_all`], which does both).
pub trait Mutator {
    /// Human-readable name (for reproducers and logs).
    fn name(&self) -> String;
    /// Perturb the stream, drawing randomness only from `rng`.
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore);
}

/// Reassign sequence numbers to the current arrival order (seq = index).
pub fn reseq(events: &mut [Event]) {
    for (i, e) in events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
}

/// Apply a mutator pipeline in order, then [`reseq`].
pub fn apply_all(events: &mut Vec<Event>, mutators: &[Box<dyn Mutator>], rng: &mut dyn RngCore) {
    for m in mutators {
        m.apply(events, rng);
    }
    reseq(events);
}

/// Re-deliver a fraction of events a second time, later in arrival order —
/// duplicate transmissions from an at-least-once transport.
#[derive(Debug, Clone, Copy)]
pub struct Duplicate {
    /// Fraction of events to duplicate (clamped to `[0, 1]`).
    pub fraction: f64,
}

impl Mutator for Duplicate {
    fn name(&self) -> String {
        format!("duplicate({})", self.fraction)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let n = events.len();
        if n == 0 {
            return;
        }
        let dups = ((n as f64 * self.fraction.clamp(0.0, 1.0)).round() as usize).min(n);
        for _ in 0..dups {
            let i = rng.gen_range(0..events.len());
            let copy = events[i].clone();
            let at = rng.gen_range(i + 1..=events.len());
            events.insert(at, copy);
        }
    }
}

/// Move a fraction of events to the tail of the arrival order without
/// touching their timestamps: stragglers reordered far past any delay bound
/// the generating model declared.
#[derive(Debug, Clone, Copy)]
pub struct Straggler {
    /// Fraction of events to delay (clamped to `[0, 1]`).
    pub fraction: f64,
}

impl Mutator for Straggler {
    fn name(&self) -> String {
        format!("straggler({})", self.fraction)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let n = events.len();
        if n < 2 {
            return;
        }
        let moves = ((n as f64 * self.fraction.clamp(0.0, 1.0)).round() as usize).min(n / 2);
        for _ in 0..moves {
            let i = rng.gen_range(0..events.len() / 2);
            let e = events.remove(i);
            let at = rng.gen_range(events.len() * 3 / 4..=events.len());
            events.insert(at, e);
        }
    }
}

/// Rewrite a fraction of timestamps deep into the past — at least `depth`
/// behind the stream clock at their arrival position — without moving the
/// events in arrival order. Unlike [`Straggler`] (which reorders arrivals),
/// this creates *timestamp* stragglers that land far inside windows that
/// are typically still open: with `depth >= W/2` for window length `W`,
/// every affected insert is forced deep into the interior of the
/// out-of-order window state, far from its in-order fast path.
#[derive(Debug, Clone, Copy)]
pub struct DeepStraggler {
    /// Minimum distance (event-time units) behind the running-max timestamp.
    pub depth: u64,
    /// Fraction of events rewritten (clamped to `[0, 1]`).
    pub fraction: f64,
}

impl Mutator for DeepStraggler {
    fn name(&self) -> String {
        format!("deep_straggler(depth={}, {})", self.depth, self.fraction)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let p = self.fraction.clamp(0.0, 1.0);
        let depth = self.depth.max(1);
        let mut clock = 0u64;
        for e in events.iter_mut() {
            // The clock advances on the *pre-mutation* timestamps, so a
            // rewritten event cannot drag the reference point down for the
            // events after it.
            let original = e.ts.raw();
            // Only rewrite once the clock can actually accommodate the full
            // depth, so every straggler is genuinely `>= depth` behind.
            if clock >= depth && rng.gen_bool(p) {
                let extra = rng.gen_range(0..=depth / 2);
                e.ts = Timestamp(clock.saturating_sub(depth + extra));
            }
            clock = clock.max(original);
        }
    }
}

/// Teleport the maximum-timestamp event to an early arrival position. The
/// stream clock surges immediately, so almost everything that follows looks
/// late — the input shape that tempts a buggy strategy into emitting a
/// regressing watermark.
#[derive(Debug, Clone, Copy)]
pub struct ClockSurge;

impl Mutator for ClockSurge {
    fn name(&self) -> String {
        "clock_surge".to_string()
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let n = events.len();
        if n < 2 {
            return;
        }
        let (imax, _) = events
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.ts.raw(), e.seq))
            .unwrap_or((0, &events[0]));
        let e = events.remove(imax);
        let at = rng.gen_range(0..=(n / 4).min(events.len()));
        events.insert(at, e);
    }
}

/// Delete one contiguous arrival slice: a source going silent (or a transport
/// dropping a burst wholesale).
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Fraction of the stream to drop (clamped to `[0, 0.9]`).
    pub fraction: f64,
}

impl Mutator for Dropout {
    fn name(&self) -> String {
        format!("dropout({})", self.fraction)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let n = events.len();
        if n < 2 {
            return;
        }
        let span = ((n as f64 * self.fraction.clamp(0.0, 0.9)) as usize).max(1);
        let start = rng.gen_range(0..n - span.min(n - 1));
        events.drain(start..(start + span).min(n));
    }
}

/// Reverse short arrival slices: bursty local disorder where a batch of
/// events arrives newest-first.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    /// Number of reversed bursts to inject.
    pub bursts: usize,
    /// Maximum burst length (events), at least 2.
    pub max_len: usize,
}

impl Mutator for Burst {
    fn name(&self) -> String {
        format!("burst(n={}, len<={})", self.bursts, self.max_len)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let n = events.len();
        if n < 3 {
            return;
        }
        for _ in 0..self.bursts {
            let len = rng.gen_range(2..=self.max_len.max(2)).min(n - 1);
            let start = rng.gen_range(0..n - len);
            events[start..start + len].reverse();
        }
    }
}

/// Remap a fraction of key-column values to one hot key: heavy-hitter skew
/// that concentrates load on a single shard of the parallel executor.
#[derive(Debug, Clone, Copy)]
pub struct KeySkew {
    /// Row index of the key column.
    pub field: usize,
    /// The heavy hitter every remapped event is assigned.
    pub hot_key: i64,
    /// Fraction of events remapped (clamped to `[0, 1]`).
    pub fraction: f64,
}

impl Mutator for KeySkew {
    fn name(&self) -> String {
        format!("key_skew(field={}, hot={})", self.field, self.hot_key)
    }
    fn apply(&self, events: &mut Vec<Event>, rng: &mut dyn RngCore) {
        let p = self.fraction.clamp(0.0, 1.0);
        for e in events.iter_mut() {
            if self.field < e.row.len() && rng.gen_bool(p) {
                let values: Vec<Value> = e
                    .row
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        if i == self.field {
                            Value::Int(self.hot_key)
                        } else {
                            v.clone()
                        }
                    })
                    .collect();
                e.row = Row::new(values);
            }
        }
    }
}

/// Quantize timestamps to a grid, forcing equal-timestamp ties — the
/// tie-breaking stress case for buffers, window folds and the parallel merge.
#[derive(Debug, Clone, Copy)]
pub struct TieCluster {
    /// Grid size in event-time units (values < 1 are treated as 1).
    pub quantum: u64,
}

impl Mutator for TieCluster {
    fn name(&self) -> String {
        format!("tie_cluster({})", self.quantum)
    }
    fn apply(&self, events: &mut Vec<Event>, _rng: &mut dyn RngCore) {
        let q = self.quantum.max(1);
        for e in events.iter_mut() {
            e.ts = Timestamp((e.ts.raw() / q) * q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                Event::new(
                    i * 10,
                    i,
                    Row::new([Value::Int((i % 4) as i64), Value::Float(i as f64)]),
                )
            })
            .collect()
    }

    fn pipeline() -> Vec<Box<dyn Mutator>> {
        vec![
            Box::new(Duplicate { fraction: 0.1 }),
            Box::new(Straggler { fraction: 0.05 }),
            Box::new(ClockSurge),
            Box::new(Dropout { fraction: 0.05 }),
            Box::new(Burst {
                bursts: 3,
                max_len: 8,
            }),
            Box::new(KeySkew {
                field: 0,
                hot_key: 0,
                fraction: 0.5,
            }),
            Box::new(TieCluster { quantum: 25 }),
            Box::new(DeepStraggler {
                depth: 100,
                fraction: 0.1,
            }),
        ]
    }

    #[test]
    fn mutations_are_seed_deterministic() {
        let muts = pipeline();
        let mut a = stream(200);
        let mut b = stream(200);
        apply_all(&mut a, &muts, &mut StdRng::seed_from_u64(7));
        apply_all(&mut b, &muts, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let mut c = stream(200);
        apply_all(&mut c, &muts, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c, "different seeds must perturb differently");
    }

    #[test]
    fn seq_is_dense_after_mutation() {
        let mut ev = stream(300);
        apply_all(&mut ev, &pipeline(), &mut StdRng::seed_from_u64(3));
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn duplicate_grows_and_dropout_shrinks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ev = stream(100);
        Duplicate { fraction: 0.2 }.apply(&mut ev, &mut rng);
        assert_eq!(ev.len(), 120);
        let before = ev.len();
        Dropout { fraction: 0.25 }.apply(&mut ev, &mut rng);
        assert!(ev.len() < before);
    }

    #[test]
    fn straggler_moves_events_past_any_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ev = stream(400);
        Straggler { fraction: 0.1 }.apply(&mut ev, &mut rng);
        reseq(&mut ev);
        // Disorder (running-max ts minus own ts) must now exceed the
        // generating model's bound of 0 by a wide margin.
        let mut clock = 0u64;
        let mut max_disorder = 0u64;
        for e in &ev {
            max_disorder = max_disorder.max(clock.saturating_sub(e.ts.raw()));
            clock = clock.max(e.ts.raw());
        }
        assert!(max_disorder > 1_000, "disorder {max_disorder}");
    }

    #[test]
    fn clock_surge_front_loads_the_max_timestamp() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ev = stream(100);
        ClockSurge.apply(&mut ev, &mut rng);
        let max_ts = ev.iter().map(|e| e.ts.raw()).max().unwrap();
        let pos = ev.iter().position(|e| e.ts.raw() == max_ts).unwrap();
        assert!(pos <= 25, "max-ts event at {pos}");
    }

    #[test]
    fn tie_cluster_creates_equal_timestamps() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ev = stream(100);
        TieCluster { quantum: 50 }.apply(&mut ev, &mut rng);
        let distinct: std::collections::BTreeSet<u64> = ev.iter().map(|e| e.ts.raw()).collect();
        assert!(distinct.len() < ev.len(), "no ties created");
        assert!(ev.iter().all(|e| e.ts.raw() % 50 == 0));
    }

    #[test]
    fn deep_straggler_rewrites_timestamps_at_least_depth_behind() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ev = stream(300);
        let original: Vec<u64> = ev.iter().map(|e| e.ts.raw()).collect();
        DeepStraggler {
            depth: 150,
            fraction: 0.2,
        }
        .apply(&mut ev, &mut rng);
        let mut clock = 0u64;
        let mut rewritten = 0usize;
        for (e, orig) in ev.iter().zip(&original) {
            if e.ts.raw() != *orig {
                rewritten += 1;
                assert!(
                    clock.saturating_sub(e.ts.raw()) >= 150,
                    "rewritten ts {} only {} behind clock {clock}",
                    e.ts.raw(),
                    clock - e.ts.raw()
                );
            }
            clock = clock.max(*orig);
        }
        assert!(
            (30..=100).contains(&rewritten),
            "expected ~20% of 300 events rewritten, got {rewritten}"
        );
        // Arrival order is untouched — only timestamps move.
        assert_eq!(ev.len(), 300);
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn deep_straggler_is_seed_deterministic() {
        let m = DeepStraggler {
            depth: 80,
            fraction: 0.3,
        };
        let mut a = stream(200);
        let mut b = stream(200);
        m.apply(&mut a, &mut StdRng::seed_from_u64(11));
        m.apply(&mut b, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn key_skew_concentrates_keys() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ev = stream(500);
        KeySkew {
            field: 0,
            hot_key: 9,
            fraction: 0.8,
        }
        .apply(&mut ev, &mut rng);
        let hot = ev
            .iter()
            .filter(|e| matches!(e.row.get(0), Value::Int(9)))
            .count();
        assert!(hot > 300, "only {hot} events remapped");
    }
}
