//! Property-based tests of the disorder-control invariants (DESIGN.md §4):
//! the slack buffer under arbitrary arrival sequences and arbitrary online
//! K changes, the delay estimator against a brute-force model, and the
//! controller's bounds.

use proptest::prelude::*;
use quill_core::prelude::*;

/// Arbitrary arrival sequence: (timestamp, K to set before the insert).
fn arrivals() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..5_000, 0u64..2_000), 1..300)
}

proptest! {
    #[test]
    fn slack_buffer_invariants_hold_under_arbitrary_k_changes(seq in arrivals()) {
        let mut buf = SlackBuffer::new(seq[0].1);
        let mut out = Vec::new();
        for (i, &(ts, k)) in seq.iter().enumerate() {
            buf.set_k(k);
            buf.insert(Event::new(ts, i as u64, Row::empty()), &mut out);
        }
        buf.finish(&mut out);

        // (1) Every event exactly once.
        let mut seqs: Vec<u64> =
            out.iter().filter_map(|e| e.as_event()).map(|e| e.seq).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..seq.len() as u64).collect::<Vec<_>>());

        // (2) Watermarks never regress; (3) non-late releases are in
        // (ts, seq) order; (4) late accounting matches.
        let mut wm = 0u64;
        let mut last: Option<(u64, u64)> = None;
        let mut late = 0u64;
        for el in &out {
            match el {
                StreamElement::Watermark(t) => {
                    prop_assert!(t.raw() >= wm);
                    wm = t.raw();
                }
                StreamElement::Event(e) => {
                    if e.ts.raw() < wm {
                        late += 1;
                    } else {
                        let key = (e.ts.raw(), e.seq);
                        if let Some(prev) = last {
                            prop_assert!(key >= prev, "release order violated");
                        }
                        last = Some(key);
                    }
                }
                StreamElement::Flush => {}
            }
        }
        prop_assert_eq!(late, buf.stats().late_passed);
        prop_assert_eq!(
            buf.stats().released + buf.stats().late_passed,
            seq.len() as u64
        );
    }

    #[test]
    fn infinite_slack_reproduces_sorted_input(ts in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut buf = SlackBuffer::new(TimeDelta::MAX);
        let mut out = Vec::new();
        for (i, &t) in ts.iter().enumerate() {
            buf.insert(Event::new(t, i as u64, Row::empty()), &mut out);
        }
        buf.finish(&mut out);
        let got: Vec<(u64, u64)> =
            out.iter().filter_map(|e| e.as_event()).map(|e| (e.ts.raw(), e.seq)).collect();
        let mut expected: Vec<(u64, u64)> =
            ts.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(buf.stats().late_passed, 0);
    }

    #[test]
    fn estimator_quantile_matches_brute_force(
        delays in prop::collection::vec(0u64..100_000, 1..150),
        cap in 1usize..200,
        q in 0.0f64..=1.0,
    ) {
        let mut est = DelayEstimator::new(cap);
        for &d in &delays {
            est.observe(TimeDelta(d));
        }
        // Brute force over the same sliding window (last `cap` values).
        let window: Vec<u64> =
            delays[delays.len().saturating_sub(cap)..].to_vec();
        let mut sorted = window.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let expected = sorted[target - 1];
        prop_assert_eq!(est.quantile(q), Some(TimeDelta(expected)));
        // CDF/quantile coherence.
        prop_assert!(est.cdf(TimeDelta(expected)) >= q - 1e-9);
    }

    #[test]
    fn estimator_cdf_is_monotone(
        delays in prop::collection::vec(0u64..10_000, 1..100),
        probes in prop::collection::vec(0u64..12_000, 2..20),
    ) {
        let mut est = DelayEstimator::new(64);
        for &d in &delays {
            est.observe(TimeDelta(d));
        }
        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        let mut last = 0.0;
        for p in sorted_probes {
            let c = est.cdf(TimeDelta(p));
            prop_assert!(c >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&c));
            last = c;
        }
    }

    #[test]
    fn controller_output_always_within_bounds(
        kp in 0.0f64..5.0,
        ki in 0.0f64..5.0,
        lo in -2.0f64..0.0,
        hi in 0.0f64..2.0,
        errors in prop::collection::vec(-10.0f64..10.0, 1..100),
    ) {
        let mut c = PiController::new(kp, ki, lo, hi);
        for e in errors {
            let out = c.update(e);
            prop_assert!((lo..=hi).contains(&out), "output {out} outside [{lo}, {hi}]");
            prop_assert_eq!(out, c.output());
        }
    }

    #[test]
    fn aq_never_violates_k_bounds_and_accounts_all_events(
        ts in prop::collection::vec(0u64..20_000, 1..300),
        k_min in 0u64..50,
        k_span in 1u64..500,
    ) {
        let mut cfg = AqConfig::completeness(0.9);
        cfg.k_min = TimeDelta(k_min);
        cfg.k_max = TimeDelta(k_min + k_span);
        cfg.warmup = 5;
        cfg.adapt_every = 3;
        let mut s = AqKSlack::new(cfg);
        let mut out = Vec::new();
        for (i, &t) in ts.iter().enumerate() {
            s.on_event(Event::new(t, i as u64, Row::new([Value::Float(1.0)])), &mut out);
            let k = s.current_k();
            prop_assert!(k >= TimeDelta(k_min), "K {k} below k_min");
            prop_assert!(k <= TimeDelta(k_min + k_span), "K {k} above k_max");
        }
        s.finish(&mut out);
        let n: u64 = out.iter().filter(|e| e.as_event().is_some()).count() as u64;
        prop_assert_eq!(n, ts.len() as u64);
    }

    #[test]
    fn sensitivity_required_completeness_is_monotone_in_epsilon(
        values in prop::collection::vec(0.1f64..1000.0, 2..50),
        eps_lo in 0.001f64..0.1,
        eps_ratio in 1.1f64..10.0,
    ) {
        let mut model = SensitivityModel::new();
        for &v in &values {
            model.observe(v);
        }
        let tight = QualityTarget::MaxRelError { epsilon: eps_lo, field: 0 }
            .required_completeness(&model);
        let loose = QualityTarget::MaxRelError { epsilon: eps_lo * eps_ratio, field: 0 }
            .required_completeness(&model);
        prop_assert!(tight >= loose, "tighter epsilon must require more completeness");
        prop_assert!((0.0..=1.0).contains(&tight));
    }
}
