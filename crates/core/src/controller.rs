//! PI feedback controller for quality-target tracking.
//!
//! The open-loop estimate `K̂ = F⁻¹(q)` is only as good as the delay sample;
//! under estimation error or non-stationary delays, achieved quality
//! deviates from the target. AQ-K-slack closes the loop: a PI controller on
//! the quality error adjusts the quantile *setpoint margin*, raising it
//! while quality lags the target and relaxing it when there is headroom. The
//! controller output is a margin added to the requested quantile (in
//! probability space), which keeps the correction scale-free across
//! workloads with wildly different delay magnitudes.

/// A discrete proportional-integral controller with output clamping and
/// anti-windup (the integral does not accumulate while the output is
/// saturated in the same direction).
#[derive(Debug, Clone)]
pub struct PiController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Output lower bound.
    pub out_min: f64,
    /// Output upper bound.
    pub out_max: f64,
    integral: f64,
    last_output: f64,
}

impl PiController {
    /// Build a controller with the given gains and output bounds.
    pub fn new(kp: f64, ki: f64, out_min: f64, out_max: f64) -> PiController {
        assert!(out_min <= out_max, "controller bounds inverted");
        PiController {
            kp,
            ki,
            out_min,
            out_max,
            integral: 0.0,
            last_output: 0.0,
        }
    }

    /// Feed one error observation (`target − measured`; positive = quality
    /// too low → output should rise). Returns the clamped output.
    pub fn update(&mut self, error: f64) -> f64 {
        let raw_p = self.kp * error;
        self.integral += error;
        let unclamped = raw_p + self.ki * self.integral;
        let out = unclamped.clamp(self.out_min, self.out_max);
        // Back-calculation anti-windup: when the output saturates, rewind
        // the integral to exactly the value that produces the bound, so it
        // carries no memory of the excess.
        if self.ki != 0.0 && unclamped != out {
            self.integral = (out - raw_p) / self.ki;
        }
        self.last_output = out;
        out
    }

    /// Most recent output.
    pub fn output(&self) -> f64 {
        self.last_output
    }

    /// Reset integral state (e.g. after a detected regime change).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_output = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response() {
        let mut c = PiController::new(2.0, 0.0, -10.0, 10.0);
        assert_eq!(c.update(1.0), 2.0);
        assert_eq!(c.update(-1.5), -3.0);
    }

    #[test]
    fn integral_accumulates_persistent_error() {
        let mut c = PiController::new(0.0, 0.5, -10.0, 10.0);
        assert_eq!(c.update(1.0), 0.5);
        assert_eq!(c.update(1.0), 1.0);
        assert_eq!(c.update(1.0), 1.5);
        // Error removed → output holds (integral memory).
        assert_eq!(c.update(0.0), 1.5);
    }

    #[test]
    fn output_is_clamped() {
        let mut c = PiController::new(100.0, 0.0, -1.0, 1.0);
        assert_eq!(c.update(5.0), 1.0);
        assert_eq!(c.update(-5.0), -1.0);
    }

    #[test]
    fn anti_windup_prevents_overshoot_memory() {
        let mut c = PiController::new(0.0, 1.0, 0.0, 1.0);
        // Saturate hard for many steps.
        for _ in 0..100 {
            assert_eq!(c.update(10.0), 1.0);
        }
        // A small negative error should pull the output off the bound
        // quickly, not after unwinding 1000 units of integral.
        let out = c.update(-0.5);
        assert!(out < 1.0, "windup: output stuck at {out}");
    }

    #[test]
    fn closed_loop_converges_on_simple_plant() {
        // Plant: measured = 0.8 + 0.15 * output (output = margin that lifts
        // quality); target 0.95 → required output = 1.0.
        let mut c = PiController::new(0.5, 0.3, 0.0, 3.0);
        let mut measured = 0.8;
        for _ in 0..200 {
            let out = c.update(0.95 - measured);
            measured = 0.8 + 0.15 * out;
        }
        assert!((measured - 0.95).abs() < 0.005, "converged to {measured}");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PiController::new(1.0, 1.0, -10.0, 10.0);
        c.update(2.0);
        c.reset();
        assert_eq!(c.output(), 0.0);
        assert_eq!(c.update(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn rejects_inverted_bounds() {
        let _ = PiController::new(1.0, 1.0, 1.0, -1.0);
    }
}
