//! AQ-K-slack: adaptive, quality-driven slack control (the paper's
//! contribution, reconstructed — see DESIGN.md §4).
//!
//! The user supplies a [`QualityTarget`]; the strategy continuously chooses
//! the smallest slack `K` expected to meet it:
//!
//! 1. **Delay estimation.** Every arriving event's delay (stream clock minus
//!    its timestamp) feeds a sliding-window [`crate::estimator::DelayEstimator`].
//! 2. **Open-loop model.** A tuple is reflected in its window's first result
//!    iff its delay ≤ K, so for required completeness `q` the minimal slack
//!    is the empirical quantile `K̂ = F⁻¹(q)`. Error targets are first
//!    translated to an effective completeness via the online
//!    [`SensitivityModel`].
//! 3. **Closed loop.** A PI controller on the *measured* completeness error
//!    (target − fraction of recent events that were released in order)
//!    adjusts the quantile setpoint by a margin, absorbing estimation error
//!    and non-stationarity.
//! 4. **Asymmetric smoothing.** K rises immediately (bursts must not cause
//!    violations) but shrinks by at most a configured fraction per
//!    adaptation step (hysteresis against transient calm).
//!
//! The buffer's watermark monotonicity makes all K changes sound: shrinking
//! K releases events earlier; growing K only delays future releases.

use crate::buffer::{BufferStats, SlackBuffer};
use crate::controller::PiController;
use crate::estimator::{DistEstimator, EstimatorKind};
use crate::quality::{QualityTarget, SensitivityModel};
use crate::strategy::DisorderControl;
use quill_engine::prelude::{Event, StreamElement, TimeDelta};
use quill_telemetry::trace::{FlightRecorder, KChangeReason, TraceKind};
use quill_telemetry::{Counter, Gauge, Registry};
use std::collections::VecDeque;

/// Tuning parameters of AQ-K-slack. The defaults are the values used across
/// the reconstructed evaluation; the R-F8 ablations sweep them.
#[derive(Debug, Clone)]
pub struct AqConfig {
    /// The quality target to meet.
    pub target: QualityTarget,
    /// Sliding delay-sample size `W` (R-F8 ablation: smaller = noisier K).
    pub sample_capacity: usize,
    /// Which delay-distribution estimator to use (exact sliding window vs.
    /// O(1)-memory decaying histogram; R-F8 ablation).
    pub estimator: EstimatorKind,
    /// Events between adaptation steps.
    pub adapt_every: u64,
    /// Events before the first adaptation; during warm-up the strategy
    /// behaves like MP-K-slack (maximum observed delay) to gather a sample
    /// safely.
    pub warmup: u64,
    /// Size of the sliding window of on-time indicators that measures
    /// achieved tuple completeness for the feedback loop.
    pub quality_window: usize,
    /// PI proportional gain (on completeness error, in quantile units).
    pub kp: f64,
    /// PI integral gain.
    pub ki: f64,
    /// Most the controller may *lower* the quantile setpoint (negative
    /// margin = trade quality headroom for latency).
    pub margin_min: f64,
    /// Most the controller may *raise* the quantile setpoint.
    pub margin_max: f64,
    /// Max fraction by which K may shrink per adaptation step (0 = frozen,
    /// 1 = unrestricted). Growth is never restricted.
    pub max_shrink: f64,
    /// Hard lower bound on K.
    pub k_min: TimeDelta,
    /// Hard upper bound on K (bounds worst-case latency and memory).
    pub k_max: TimeDelta,
    /// Disable the feedback controller (open-loop ablation, R-F8).
    pub open_loop: bool,
}

impl AqConfig {
    /// Default configuration for a completeness target.
    pub fn completeness(q: f64) -> AqConfig {
        AqConfig::with_target(QualityTarget::Completeness { q })
    }

    /// Default configuration for a relative-error target on `field`.
    pub fn max_rel_error(epsilon: f64, field: usize) -> AqConfig {
        AqConfig::with_target(QualityTarget::MaxRelError { epsilon, field })
    }

    /// Defaults around an arbitrary target.
    pub fn with_target(target: QualityTarget) -> AqConfig {
        AqConfig {
            target,
            sample_capacity: 4096,
            estimator: EstimatorKind::SlidingWindow,
            adapt_every: 64,
            warmup: 256,
            quality_window: 1024,
            kp: 0.4,
            ki: 0.08,
            margin_min: -0.01,
            margin_max: 0.05,
            max_shrink: 0.3,
            k_min: TimeDelta::ZERO,
            k_max: TimeDelta(u64::MAX / 4),
            open_loop: false,
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        self.target.validate()?;
        if self.sample_capacity == 0 {
            return Err("sample_capacity must be > 0".into());
        }
        if self.adapt_every == 0 {
            return Err("adapt_every must be > 0".into());
        }
        if !(0.0..=1.0).contains(&self.max_shrink) {
            return Err(format!("max_shrink={} outside [0,1]", self.max_shrink));
        }
        if self.margin_min > self.margin_max {
            return Err("margin bounds inverted".into());
        }
        if self.k_min > self.k_max {
            return Err("k bounds inverted".into());
        }
        Ok(())
    }
}

/// Introspection counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AqStats {
    /// Adaptation steps performed.
    pub adaptations: u64,
    /// Steps where the smoothing limited a shrink.
    pub shrinks_limited: u64,
    /// Steps clamped at `k_min` or `k_max`.
    pub bound_hits: u64,
    /// Last measured completeness fed to the controller.
    pub measured_completeness: f64,
    /// Last effective quantile setpoint (target + margin).
    pub effective_quantile: f64,
}

/// Control-loop telemetry under `quill.controller.*` / `quill.estimator.*`,
/// updated once per adaptation step. Default handles are no-ops.
#[derive(Debug, Default)]
struct AqTelemetry {
    enabled: bool,
    k: Gauge,
    error: Gauge,
    margin: Gauge,
    measured_completeness: Gauge,
    effective_quantile: Gauge,
    adaptations: Counter,
    est_p50: Gauge,
    est_p95: Gauge,
    est_p99: Gauge,
}

/// The adaptive quality-driven K-slack strategy.
pub struct AqKSlack {
    cfg: AqConfig,
    buf: SlackBuffer,
    estimator: DistEstimator,
    controller: PiController,
    sensitivity: SensitivityModel,
    /// Sliding on-time indicators (true = released in order).
    ontime: VecDeque<bool>,
    ontime_count: usize,
    events_seen: u64,
    stats: AqStats,
    telemetry: AqTelemetry,
    trace: FlightRecorder,
}

impl AqKSlack {
    /// Build from a configuration.
    ///
    /// # Panics
    /// Panics on invalid configuration; use [`AqConfig::validate`] first for
    /// fallible construction.
    pub fn new(cfg: AqConfig) -> AqKSlack {
        if let Err(e) = cfg.validate() {
            panic!("invalid AqConfig: {e}");
        }
        let controller = PiController::new(cfg.kp, cfg.ki, cfg.margin_min, cfg.margin_max);
        AqKSlack {
            estimator: DistEstimator::new(cfg.estimator, cfg.sample_capacity),
            controller,
            sensitivity: SensitivityModel::new(),
            ontime: VecDeque::with_capacity(cfg.quality_window.max(1)),
            ontime_count: 0,
            buf: SlackBuffer::new(0u64),
            events_seen: 0,
            stats: AqStats {
                measured_completeness: 1.0,
                ..AqStats::default()
            },
            telemetry: AqTelemetry::default(),
            trace: FlightRecorder::disabled(),
            cfg,
        }
    }

    /// Convenience: completeness-targeted strategy with defaults.
    pub fn for_completeness(q: f64) -> AqKSlack {
        AqKSlack::new(AqConfig::completeness(q))
    }

    /// Introspection counters.
    pub fn aq_stats(&self) -> AqStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &AqConfig {
        &self.cfg
    }

    /// The completeness the *open-loop model* predicts for the slack
    /// currently in force: the estimated delay CDF at K. Useful for
    /// dashboards ("what is this buffer buying me right now?") and for
    /// checking model calibration against measured quality.
    pub fn predicted_completeness(&self) -> f64 {
        self.estimator.cdf(self.buf.k())
    }

    fn record_ontime(&mut self, ontime: bool) {
        if self.ontime.len() == self.cfg.quality_window.max(1) {
            if let Some(old) = self.ontime.pop_front() {
                if old {
                    self.ontime_count -= 1;
                }
            }
        }
        self.ontime.push_back(ontime);
        if ontime {
            self.ontime_count += 1;
        }
    }

    fn measured_completeness(&self) -> f64 {
        if self.ontime.is_empty() {
            1.0
        } else {
            self.ontime_count as f64 / self.ontime.len() as f64
        }
    }

    fn adapt(&mut self) {
        let q_req = self.cfg.target.required_completeness(&self.sensitivity);
        let measured = self.measured_completeness();
        let margin = if self.cfg.open_loop {
            0.0
        } else {
            self.controller.update(q_req - measured)
        };
        let q_eff = (q_req + margin).clamp(0.0, 1.0);
        let candidate = self.estimator.quantile(q_eff).unwrap_or(TimeDelta::ZERO);
        let current = self.buf.k();
        // Grow immediately; shrink at most max_shrink per step.
        let mut reason = KChangeReason::Adapt;
        let mut next = if candidate >= current {
            candidate
        } else {
            let floor = TimeDelta::from_f64(current.as_f64() * (1.0 - self.cfg.max_shrink));
            if candidate < floor {
                self.stats.shrinks_limited += 1;
                reason = KChangeReason::ShrinkLimited;
                floor
            } else {
                candidate
            }
        };
        if next < self.cfg.k_min || next > self.cfg.k_max {
            self.stats.bound_hits += 1;
            reason = KChangeReason::BoundClamped;
            next = next.max(self.cfg.k_min).min(self.cfg.k_max);
        }
        if self.trace.is_enabled() && next != current {
            self.trace.record(
                self.buf.clock().raw(),
                0,
                TraceKind::KChange {
                    old_k: current.raw(),
                    new_k: next.raw(),
                    reason,
                },
            );
        }
        self.buf.set_k(next);
        self.stats.adaptations += 1;
        self.stats.measured_completeness = measured;
        self.stats.effective_quantile = q_eff;
        if self.telemetry.enabled {
            let t = &self.telemetry;
            t.adaptations.inc();
            t.k.set(next.as_f64());
            t.error.set(q_req - measured);
            t.margin.set(margin);
            t.measured_completeness.set(measured);
            t.effective_quantile.set(q_eff);
            // Estimator quantiles are computed only when someone is
            // watching — they cost a sort/scan on the sliding estimator.
            for (q, g) in [(0.5, &t.est_p50), (0.95, &t.est_p95), (0.99, &t.est_p99)] {
                g.set(
                    self.estimator
                        .quantile(q)
                        .unwrap_or(TimeDelta::ZERO)
                        .as_f64(),
                );
            }
        }
    }
}

impl DisorderControl for AqKSlack {
    fn instrument(&mut self, telemetry: &Registry) {
        self.buf.instrument(telemetry);
        self.telemetry = AqTelemetry {
            enabled: telemetry.is_enabled(),
            k: telemetry.gauge("quill.controller.k"),
            error: telemetry.gauge("quill.controller.error"),
            margin: telemetry.gauge("quill.controller.margin"),
            measured_completeness: telemetry.gauge("quill.controller.measured_completeness"),
            effective_quantile: telemetry.gauge("quill.controller.effective_quantile"),
            adaptations: telemetry.counter("quill.controller.adaptations"),
            est_p50: telemetry.gauge("quill.estimator.p50"),
            est_p95: telemetry.gauge("quill.estimator.p95"),
            est_p99: telemetry.gauge("quill.estimator.p99"),
        };
    }

    fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.buf.attach_trace(trace);
        self.trace = trace.clone();
        crate::strategy::record_initial_k(trace, self.buf.k().raw());
    }

    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }

    fn name(&self) -> String {
        match self.cfg.target {
            QualityTarget::Completeness { q } => format!("aq(q={q})"),
            QualityTarget::MaxRelError { epsilon, .. } => format!("aq(eps={epsilon})"),
        }
    }

    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        self.events_seen += 1;
        // Delay against the clock before this event advances it.
        let delay = self.buf.clock().delta_since(e.ts);
        self.estimator.observe(delay);
        if let QualityTarget::MaxRelError { field, .. } = self.cfg.target {
            if let Some(v) = e.row.f64(field) {
                self.sensitivity.observe(v);
            }
        }
        // On-time = the buffer can still order this event correctly.
        self.record_ontime(e.ts >= self.buf.watermark());

        if self.events_seen <= self.cfg.warmup {
            // Warm-up: MP behaviour (K = max observed delay) while the
            // sample fills.
            let k = self
                .estimator
                .max_ever()
                .min(self.cfg.k_max)
                .max(self.cfg.k_min);
            if self.trace.is_enabled() && k != self.buf.k() {
                self.trace.record(
                    self.buf.clock().raw(),
                    0,
                    TraceKind::KChange {
                        old_k: self.buf.k().raw(),
                        new_k: k.raw(),
                        reason: KChangeReason::Warmup,
                    },
                );
            }
            self.buf.set_k(k);
        } else if self.events_seen.is_multiple_of(self.cfg.adapt_every) {
            self.adapt();
        }
        self.buf.insert(e, out);
    }

    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }

    fn current_k(&self) -> TimeDelta {
        self.buf.k()
    }

    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }

    fn kind(&self) -> crate::plan::StrategyKind {
        // The default k_max (u64::MAX / 4) is a numeric guard, not a user
        // bound — report it as unbounded so the plan analyzer doesn't
        // reason about a cap nobody chose.
        crate::plan::StrategyKind::Aq {
            target: self.cfg.target,
            k_max: (self.cfg.k_max.raw() < u64::MAX / 4).then(|| self.cfg.k_max.raw()),
        }
    }

    fn split_for_shard_staging(&mut self) -> bool {
        // Every adaptive input — observed delay, on-time classification,
        // sensitivity samples, the PI loop — is computed from the arriving
        // event and the buffer's clock/watermark before insertion, never
        // from held payloads, so the control loop is unchanged.
        self.buf.set_control_only();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::{Row, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Feed a synthetic stream with exponential-ish delays and return the
    /// strategy for inspection.
    fn feed_stream(mut s: AqKSlack, n: u64, mean_delay: f64, seed: u64) -> AqKSlack {
        let mut rng = StdRng::seed_from_u64(seed);
        // Source timestamps every 10 units; arrival = ts + delay; feed in
        // arrival order.
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let ts = i * 10;
                let u: f64 = rng.gen::<f64>();
                let d = (-mean_delay * (1.0 - u).max(f64::MIN_POSITIVE).ln()) as u64;
                (ts + d, ts)
            })
            .collect();
        arrivals.sort();
        let mut out = Vec::new();
        for (seq, &(_, ts)) in arrivals.iter().enumerate() {
            s.on_event(
                Event::new(ts, seq as u64, Row::new([Value::Float(1.0)])),
                &mut out,
            );
            out.clear();
        }
        s
    }

    #[test]
    fn config_validation() {
        assert!(AqConfig::completeness(0.95).validate().is_ok());
        let mut bad = AqConfig::completeness(0.95);
        bad.adapt_every = 0;
        assert!(bad.validate().is_err());
        let mut bad = AqConfig::completeness(0.95);
        bad.max_shrink = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = AqConfig::completeness(0.95);
        bad.k_min = TimeDelta(10);
        bad.k_max = TimeDelta(5);
        assert!(bad.validate().is_err());
        assert!(AqConfig::completeness(0.0).validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid AqConfig")]
    fn new_panics_on_invalid() {
        let mut bad = AqConfig::completeness(0.9);
        bad.margin_min = 1.0;
        bad.margin_max = 0.0;
        let _ = AqKSlack::new(bad);
    }

    #[test]
    fn k_converges_near_target_quantile() {
        // Exponential(mean 100) delays: F⁻¹(0.95) = -100·ln(0.05) ≈ 300.
        let s = feed_stream(AqKSlack::for_completeness(0.95), 20_000, 100.0, 1);
        let k = s.current_k().as_f64();
        assert!(
            (200.0..600.0).contains(&k),
            "K={k}, expected near 300 for q=0.95 exp(100)"
        );
        assert!(s.aq_stats().adaptations > 100);
    }

    #[test]
    fn higher_target_needs_larger_k() {
        let lo = feed_stream(AqKSlack::for_completeness(0.90), 15_000, 100.0, 2);
        let hi = feed_stream(AqKSlack::for_completeness(0.999), 15_000, 100.0, 2);
        assert!(
            hi.current_k() > lo.current_k(),
            "q=0.999 K={} should exceed q=0.90 K={}",
            hi.current_k().raw(),
            lo.current_k().raw()
        );
    }

    #[test]
    fn k_is_far_below_max_delay_for_moderate_targets() {
        // The whole point vs. MP-K-slack: q=0.9 needs ~the 90th percentile,
        // not the maximum.
        let s = feed_stream(AqKSlack::for_completeness(0.9), 20_000, 100.0, 3);
        let k = s.current_k().as_f64();
        let max_ever = s.estimator.max_ever().as_f64();
        assert!(k < max_ever / 2.0, "K={k} vs max delay {max_ever}");
    }

    #[test]
    fn measured_completeness_tracks_target() {
        let s = feed_stream(AqKSlack::for_completeness(0.95), 30_000, 80.0, 4);
        let achieved = s.aq_stats().measured_completeness;
        assert!(
            achieved >= 0.93,
            "achieved completeness {achieved} « target 0.95"
        );
    }

    #[test]
    fn warmup_uses_max_delay() {
        let mut cfg = AqConfig::completeness(0.5);
        cfg.warmup = 100;
        let mut s = AqKSlack::new(cfg);
        let mut out = Vec::new();
        s.on_event(
            Event::new(1000u64, 0, Row::new([Value::Float(0.0)])),
            &mut out,
        );
        s.on_event(
            Event::new(400u64, 1, Row::new([Value::Float(0.0)])),
            &mut out,
        );
        // Still warming up: K = max delay (600), not the median.
        assert_eq!(s.current_k(), TimeDelta(600));
        assert_eq!(s.aq_stats().adaptations, 0);
    }

    #[test]
    fn shrink_is_rate_limited() {
        let mut cfg = AqConfig::completeness(0.9);
        cfg.warmup = 0;
        cfg.adapt_every = 1;
        cfg.max_shrink = 0.1;
        let mut s = AqKSlack::new(cfg);
        let mut out = Vec::new();
        // One huge delay pushes K up...
        s.on_event(
            Event::new(10_000u64, 0, Row::new([Value::Float(0.0)])),
            &mut out,
        );
        s.on_event(Event::new(0u64, 1, Row::new([Value::Float(0.0)])), &mut out);
        let k_high = s.current_k();
        assert!(k_high.raw() > 0);
        // ...then orderly traffic shrinks it slowly, ≤10 % per step.
        let mut prev = s.current_k().as_f64();
        for i in 2..40u64 {
            s.on_event(
                Event::new(10_000 + i * 10, i, Row::new([Value::Float(0.0)])),
                &mut out,
            );
            let now = s.current_k().as_f64();
            assert!(now >= prev * 0.899, "shrank too fast: {prev} -> {now}");
            prev = now;
        }
        assert!(s.aq_stats().shrinks_limited > 0);
    }

    #[test]
    fn k_respects_bounds() {
        let mut cfg = AqConfig::completeness(0.99);
        cfg.k_min = TimeDelta(5);
        cfg.k_max = TimeDelta(50);
        cfg.warmup = 0;
        cfg.adapt_every = 1;
        let s = feed_stream(AqKSlack::new(cfg), 5_000, 200.0, 5);
        let k = s.current_k();
        assert!(k >= TimeDelta(5) && k <= TimeDelta(50), "K={k}");
        assert!(s.aq_stats().bound_hits > 0);
    }

    #[test]
    fn open_loop_skips_controller() {
        let mut cfg = AqConfig::completeness(0.95);
        cfg.open_loop = true;
        let s = feed_stream(AqKSlack::new(cfg), 10_000, 100.0, 6);
        // Effective quantile stays exactly at the target.
        assert!((s.aq_stats().effective_quantile - 0.95).abs() < 1e-12);
    }

    #[test]
    fn error_target_yields_smaller_k_than_equivalent_completeness() {
        // With a near-constant payload, eps=0.1 → required completeness 0.9;
        // a 0.999 completeness target must buffer much longer.
        let strict = feed_stream(AqKSlack::for_completeness(0.999), 15_000, 100.0, 7);
        let lax = feed_stream(
            AqKSlack::new(AqConfig::max_rel_error(0.1, 0)),
            15_000,
            100.0,
            7,
        );
        assert!(
            lax.current_k() < strict.current_k(),
            "error-target K={} should be below strict completeness K={}",
            lax.current_k().raw(),
            strict.current_k().raw()
        );
    }

    #[test]
    fn instrumented_aq_reports_control_loop() {
        let reg = Registry::new();
        let mut s = AqKSlack::for_completeness(0.95);
        s.instrument(&reg);
        let s = feed_stream(s, 10_000, 100.0, 42);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("quill.controller.adaptations"),
            s.aq_stats().adaptations
        );
        assert_eq!(
            snap.gauge("quill.controller.k"),
            Some(s.current_k().as_f64())
        );
        assert_eq!(
            snap.gauge("quill.controller.measured_completeness"),
            Some(s.aq_stats().measured_completeness)
        );
        assert!(snap.gauge("quill.estimator.p95").unwrap() > 0.0);
        assert!(
            snap.gauge("quill.estimator.p99").unwrap()
                >= snap.gauge("quill.estimator.p50").unwrap()
        );
        // The buffer was wired through the same call.
        assert!(snap.counter("quill.buffer.inserted") > 0);
    }

    #[test]
    fn trace_records_k_decisions_with_reasons() {
        use quill_telemetry::trace::{KChangeReason, TraceKind};
        let trace = quill_telemetry::FlightRecorder::new(8192);
        let mut cfg = AqConfig::completeness(0.9);
        cfg.warmup = 10;
        cfg.adapt_every = 5;
        let mut s = AqKSlack::new(cfg);
        s.attach_trace(&trace);
        let s = feed_stream(s, 5_000, 100.0, 11);
        let reasons: Vec<KChangeReason> = trace
            .events()
            .into_iter()
            .filter_map(|t| match t.kind {
                TraceKind::KChange { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons.first(), Some(&KChangeReason::Initial));
        assert!(reasons.contains(&KChangeReason::Warmup), "{reasons:?}");
        assert!(
            reasons
                .iter()
                .any(|r| matches!(r, KChangeReason::Adapt | KChangeReason::ShrinkLimited)),
            "{reasons:?}"
        );
        // Every recorded change actually changed K (except the initial).
        for t in trace.events() {
            if let TraceKind::KChange {
                old_k,
                new_k,
                reason,
            } = t.kind
            {
                if reason != KChangeReason::Initial {
                    assert_ne!(old_k, new_k);
                }
            }
        }
        assert!(s.aq_stats().adaptations > 0);
    }

    #[test]
    fn name_mentions_target() {
        assert!(AqKSlack::for_completeness(0.95).name().contains("0.95"));
        assert!(AqKSlack::new(AqConfig::max_rel_error(0.01, 0))
            .name()
            .contains("0.01"));
    }

    #[test]
    fn releases_remain_ordered_under_adaptation() {
        let mut cfg = AqConfig::completeness(0.9);
        cfg.warmup = 10;
        cfg.adapt_every = 5;
        let mut s = AqKSlack::new(cfg);
        let mut rng = StdRng::seed_from_u64(8);
        let mut arrivals: Vec<(u64, u64)> = (0..2000u64)
            .map(|i| {
                let ts = i * 7;
                let d: u64 = rng.gen_range(0..200);
                (ts + d, ts)
            })
            .collect();
        arrivals.sort();
        let mut out = Vec::new();
        for (seq, &(_, ts)) in arrivals.iter().enumerate() {
            s.on_event(Event::new(ts, seq as u64, Row::empty()), &mut out);
        }
        s.finish(&mut out);
        // All non-late releases must be in (ts, seq) order between
        // consecutive watermarks; globally, watermarks must be monotone and
        // every event released after watermark w must have ts >= w... unless
        // counted as a late pass.
        let mut wm = 0u64;
        let mut late_seen = 0u64;
        for el in &out {
            match el {
                StreamElement::Watermark(w) => {
                    assert!(w.raw() >= wm);
                    wm = w.raw();
                }
                StreamElement::Event(e) => {
                    if e.ts.raw() < wm {
                        late_seen += 1;
                    }
                }
                StreamElement::Flush => {}
            }
        }
        assert_eq!(late_seen, s.buffer_stats().late_passed);
    }
}

#[cfg(test)]
mod prediction_tests {
    use super::*;
    use quill_engine::prelude::{Event, Row, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn predicted_completeness_is_calibrated_in_steady_state() {
        let mut s = AqKSlack::for_completeness(0.9);
        let mut rng = StdRng::seed_from_u64(99);
        let mut arrivals: Vec<(u64, u64)> = (0..20_000u64)
            .map(|i| {
                let ts = i * 10;
                (ts + rng.gen_range(0..500), ts)
            })
            .collect();
        arrivals.sort();
        let mut out = Vec::new();
        for (seq, &(_, ts)) in arrivals.iter().enumerate() {
            s.on_event(
                Event::new(ts, seq as u64, Row::new([Value::Float(1.0)])),
                &mut out,
            );
            out.clear();
        }
        let predicted = s.predicted_completeness();
        let measured = s.aq_stats().measured_completeness;
        assert!(
            (predicted - measured).abs() < 0.08,
            "open-loop prediction {predicted} vs measured {measured}"
        );
        assert!(predicted >= 0.85, "prediction {predicted} far below target");
    }
}
