//! Runtime-registrable multi-query sessions: the push-mode execution
//! surface.
//!
//! [`crate::runner::execute`] and [`crate::shared::execute_shared`] are
//! batch-style: they consume a finished event vector. A [`Session`] is the
//! resident counterpart — one shared [`DisorderControl`] core (one buffer,
//! one watermark sequence) with queries registered and deregistered **at
//! runtime**, each observing the staged stream through its own window
//! operator and a bounded result subscription ([`QueryHandle`]).
//!
//! The session is the execution heart of the `quill-serve` daemon: the
//! server is a network shell that feeds [`Session::push`] /
//! [`Session::heartbeat`] and drains [`QueryHandle::poll`]. The same
//! internal fan-out core (`MultiQueryCore`) drives `execute_shared`'s
//! sequential path, so batch and resident execution share one code path and
//! produce element-identical results for the same staged stream.
//!
//! ```
//! use quill_core::prelude::*;
//!
//! let mut session = Session::new(Box::new(FixedKSlack::new(20u64)));
//! let query = QuerySpec::builder()
//!     .window(WindowSpec::tumbling(10u64))
//!     .aggregate(AggregateKind::Sum, 0, "sum")
//!     .build()
//!     .unwrap();
//! let handle = session.register(&query).unwrap();
//! for (seq, ts) in [(0u64, 5u64), (1, 3), (2, 25), (3, 17), (4, 40)] {
//!     session.push(Event::new(ts, seq, Row::new([Value::Float(1.0)])));
//! }
//! session.finish();
//! assert!(!handle.poll().is_empty());
//! ```

use crate::plan::{analyze_plan, DelayProfile, Diagnostic, Severity};
use crate::runner::{ExecOptions, QuerySpec};
use crate::strategy::DisorderControl;
use parking_lot::Mutex;
use quill_engine::error::{EngineError, Result};
use quill_engine::event::{ClockTracker, Event, StreamElement};
use quill_engine::fiba::WindowState;
use quill_engine::operator::{
    LatePolicy, Operator, WindowAggregateOp, WindowOpStats, WindowResult,
};
use quill_engine::time::{TimeDelta, Timestamp};
use quill_engine::value::Key;
use quill_metrics::{LatencyRecorder, Summary};
use quill_telemetry::{Counter, Gauge, Registry, SpanRecorder, Stage};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Default bound on a query's pending-result queue; see
/// [`QueryConfig::result_capacity`].
pub const DEFAULT_RESULT_CAPACITY: usize = 16_384;

/// Plan-analyzer rules that do not apply in session context (the session
/// tracks per-query targets itself, without the batch provenance layer).
const SESSION_IRRELEVANT_RULES: &[&str] = &["plan.options.completeness-without-trace"];

/// Identifier of a query registered in a [`Session`], unique within it for
/// the session's lifetime (never reused after deregistration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The raw numeric id (stable across [`QueryId::from_raw`]).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuild an id from its raw number (e.g. parsed out of a URL path).
    pub fn from_raw(id: u64) -> QueryId {
        QueryId(id)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-query registration options.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Completeness target this subscriber requires, consulted by the plan
    /// analyzer at registration (a target the strategy provably cannot meet
    /// is refused) and reported via [`Session::query_info`]. The session's
    /// shared buffer must be sized for the *strictest* subscriber — see
    /// [`crate::shared::strictest_completeness`].
    pub required_completeness: Option<f64>,
    /// Bound on the pending-result queue between the session and
    /// [`QueryHandle::poll`]. When full, the **oldest** pending result is
    /// dropped and counted in [`QueryStats::overflow_dropped`] — a slow
    /// consumer loses history, never blocks the stream.
    pub result_capacity: usize,
    /// Result-latency objective in event-time units: a result whose
    /// end-to-end latency (emission clock minus window end) exceeds this
    /// bound counts one [`QueryStats::slo_breaches`]. `None` disables the
    /// accounting.
    pub latency_slo: Option<u64>,
}

impl Default for QueryConfig {
    fn default() -> QueryConfig {
        QueryConfig {
            required_completeness: None,
            result_capacity: DEFAULT_RESULT_CAPACITY,
            latency_slo: None,
        }
    }
}

impl QueryConfig {
    /// Require the given completeness of this query's windows.
    pub fn with_required_completeness(mut self, q: f64) -> QueryConfig {
        self.required_completeness = Some(q);
        self
    }

    /// Override the pending-result queue bound (`usize::MAX` = unbounded).
    pub fn with_result_capacity(mut self, capacity: usize) -> QueryConfig {
        self.result_capacity = capacity.max(1);
        self
    }

    /// Count results later than `slo` (event-time units) as SLO breaches.
    pub fn with_latency_slo(mut self, slo: u64) -> QueryConfig {
        self.latency_slo = Some(slo);
        self
    }
}

/// Snapshot of one query's counters, readable at any time from any thread
/// via [`QueryHandle::stats`].
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Window results emitted to this subscription so far.
    pub emitted: u64,
    /// Results evicted from a full subscription queue (slow consumer).
    pub overflow_dropped: u64,
    /// Results currently queued, awaiting [`QueryHandle::poll`].
    pub pending: usize,
    /// Window-operator counters (accepted / late-dropped / emitted).
    pub window: WindowOpStats,
    /// Mean result latency so far (event-time units).
    pub mean_latency: f64,
    /// Results whose latency exceeded [`QueryConfig::latency_slo`] (always
    /// zero when no objective was set).
    pub slo_breaches: u64,
    /// Whether the query was deregistered or the session finished.
    pub closed: bool,
}

/// Shared per-subscription state between the session (producer side) and
/// its [`QueryHandle`]s (consumer side).
pub(crate) struct SubState {
    queue: VecDeque<WindowResult>,
    capacity: usize,
    overflow_dropped: u64,
    emitted: u64,
    window: WindowOpStats,
    latency: LatencyRecorder,
    latency_slo: Option<u64>,
    slo_breaches: u64,
    closed: bool,
}

impl SubState {
    fn push(&mut self, r: WindowResult) {
        self.emitted += 1;
        if self.queue.len() >= self.capacity {
            self.queue.pop_front();
            self.overflow_dropped += 1;
        }
        self.queue.push_back(r);
    }

    fn stats(&self) -> QueryStats {
        QueryStats {
            emitted: self.emitted,
            overflow_dropped: self.overflow_dropped,
            pending: self.queue.len(),
            window: self.window,
            mean_latency: self.latency.mean(),
            slo_breaches: self.slo_breaches,
            closed: self.closed,
        }
    }
}

/// Consumer-side handle to one registered query: poll results, read stats.
/// Clones share the subscription; the handle stays valid (and pollable for
/// residual results) after deregistration or session finish.
#[derive(Clone)]
pub struct QueryHandle {
    id: QueryId,
    state: Arc<Mutex<SubState>>,
    plan: Arc<Vec<Diagnostic>>,
}

impl QueryHandle {
    /// The id this query was registered under.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Drain every pending result, in emission order.
    pub fn poll(&self) -> Vec<WindowResult> {
        self.state.lock().queue.drain(..).collect()
    }

    /// Current counters (exact: the session refreshes them whenever the
    /// query's operator processes staged elements).
    pub fn stats(&self) -> QueryStats {
        self.state.lock().stats()
    }

    /// Approximate result-latency quantile so far.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        self.state.lock().latency.quantile(q)
    }

    /// Non-fatal plan diagnostics recorded at registration.
    pub fn plan(&self) -> &[Diagnostic] {
        &self.plan
    }

    /// `true` once the query was deregistered or the session finished.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryHandle").field("id", &self.id).finish()
    }
}

/// Static description of one registered query, for listings (`/queries`).
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Registration id.
    pub id: QueryId,
    /// The query.
    pub spec: QuerySpec,
    /// The subscriber's completeness target, if any.
    pub required_completeness: Option<f64>,
    /// Current counters.
    pub stats: QueryStats,
}

/// One registered query inside the fan-out core.
struct Slot {
    id: QueryId,
    spec: QuerySpec,
    required_completeness: Option<f64>,
    op: WindowAggregateOp,
    state: Arc<Mutex<SubState>>,
}

/// The multi-query fan-out core: N window operators observing one staged
/// stream. [`Session`] wraps it for resident use;
/// [`crate::shared::execute_shared`]'s sequential path replays a
/// [`crate::runner::StagedStream`] through it, so batch and resident
/// execution share the per-element fan-out code.
pub(crate) struct MultiQueryCore {
    slots: Vec<Slot>,
    next_id: u64,
    results_count: Counter,
    /// First-emission windows across all queries — the session-level analogue
    /// of the parallel executor's distinct-merge-key counter, exported under
    /// the same `quill.merge.windows` name.
    windows_count: Counter,
    results_total: u64,
    spans: SpanRecorder,
    window_state: WindowState,
}

impl MultiQueryCore {
    pub(crate) fn new(telemetry: &Registry) -> MultiQueryCore {
        MultiQueryCore {
            slots: Vec::new(),
            next_id: 0,
            results_count: telemetry.counter("quill.run.results"),
            windows_count: telemetry.counter("quill.merge.windows"),
            results_total: 0,
            spans: SpanRecorder::disabled(),
            window_state: WindowState::default(),
        }
    }

    /// Select the window state backend for operators registered from now on
    /// (builder-time only; queries already registered keep their backend).
    pub(crate) fn set_window_state(&mut self, state: WindowState) {
        self.window_state = state;
    }

    /// Re-bind counters to a different registry (builder-time only).
    fn instrument(&mut self, telemetry: &Registry) {
        self.results_count = telemetry.counter("quill.run.results");
        self.windows_count = telemetry.counter("quill.merge.windows");
    }

    /// Record query-tagged [`Stage::Deliver`] spans into `spans`
    /// (builder-time only).
    pub(crate) fn attach_spans(&mut self, spans: &SpanRecorder) {
        self.spans = spans.clone();
    }

    /// Add one query; validation errors propagate before any state changes.
    pub(crate) fn register(
        &mut self,
        spec: &QuerySpec,
        required_completeness: Option<f64>,
        result_capacity: usize,
        latency_slo: Option<u64>,
        latency: LatencyRecorder,
    ) -> Result<(QueryId, Arc<Mutex<SubState>>)> {
        let op = WindowAggregateOp::new(
            spec.window,
            spec.aggregates.clone(),
            spec.key_field,
            LatePolicy::Drop,
        )?
        .with_window_state(self.window_state);
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let state = Arc::new(Mutex::new(SubState {
            queue: VecDeque::new(),
            capacity: result_capacity.max(1),
            overflow_dropped: 0,
            emitted: 0,
            window: WindowOpStats::default(),
            latency,
            latency_slo,
            slo_breaches: 0,
            closed: false,
        }));
        self.slots.push(Slot {
            id,
            spec: spec.clone(),
            required_completeness,
            op,
            state: Arc::clone(&state),
        });
        Ok((id, state))
    }

    fn remove(&mut self, id: QueryId) -> Option<Slot> {
        let at = self.slots.iter().position(|s| s.id == id)?;
        Some(self.slots.remove(at))
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Fan one staged element out to every registered operator. `now` is the
    /// clock results emitted by this element are stamped with (the latency
    /// of a result is `now - window.end`). The element is taken by value:
    /// the last (and in the common single-query case, only) operator
    /// receives it without a copy.
    pub(crate) fn process_element(&mut self, el: StreamElement, now: Timestamp) {
        let MultiQueryCore {
            slots,
            results_count,
            windows_count,
            results_total,
            spans,
            ..
        } = self;
        let fan_out = slots.len();
        let mut pending = Some(el);
        for (i, slot) in slots.iter_mut().enumerate() {
            let Some(cur) = pending.take() else { break };
            if i + 1 < fan_out {
                // quill-lint: allow(hot-path-alloc, reason = "N-query fan-out needs N-1 copies; single-query sessions move the element with zero clones")
                pending = Some(cur.clone());
            }
            let Slot { id, op, state, .. } = slot;
            let mut sub = None;
            op.process(cur, &mut |o| {
                if let StreamElement::Event(out_ev) = o {
                    if let Some(r) = WindowResult::from_row(&out_ev.row) {
                        results_count.inc();
                        *results_total += 1;
                        if r.revision == 0 {
                            windows_count.inc();
                        }
                        let lat = now.delta_since(r.window.end);
                        if spans.is_enabled() {
                            let end = now.raw().max(r.window.end.raw());
                            spans.record_for_query(
                                Stage::Deliver,
                                r.window.end.raw(),
                                end,
                                0,
                                id.0,
                            );
                        }
                        let q = sub.get_or_insert_with(|| state.lock());
                        q.latency.record(lat);
                        if q.latency_slo.is_some_and(|slo| lat.raw() > slo) {
                            q.slo_breaches += 1;
                        }
                        q.push(r);
                    }
                }
            });
        }
    }

    /// Refresh every subscription's operator-counter mirror.
    pub(crate) fn sync_stats(&mut self) {
        for slot in &self.slots {
            slot.state.lock().window = slot.op.stats();
        }
    }

    fn close_all(&mut self) {
        self.sync_stats();
        for slot in &self.slots {
            slot.state.lock().closed = true;
        }
    }

    /// Consume the core, yielding each query's drained results and latency
    /// summary in registration order (batch-path extraction).
    pub(crate) fn into_outputs(self) -> Vec<(Vec<WindowResult>, Summary)> {
        self.slots
            .into_iter()
            .map(|slot| {
                let mut sub = slot.state.lock();
                let results: Vec<WindowResult> = sub.queue.drain(..).collect();
                let latency = sub.latency.summary();
                (results, latency)
            })
            .collect()
    }
}

/// Counters for the whole session, snapshot-able at any time.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Events pushed.
    pub events: u64,
    /// Heartbeats applied.
    pub heartbeats: u64,
    /// Queries currently registered.
    pub queries: usize,
    /// Results emitted across all queries over the session's lifetime
    /// (deregistered queries included).
    pub results: u64,
    /// The slack currently in force.
    pub current_k: TimeDelta,
    /// Events currently held in the ordering buffer.
    pub buffered: u64,
    /// The stream clock (max event timestamp observed).
    pub clock: Option<Timestamp>,
    /// Whether [`Session::finish`] ran.
    pub finished: bool,
}

/// A resident multi-query execution session over one shared disorder-control
/// strategy. See the [module docs](self) for the model and an example.
///
/// Mid-stream registration is first-class: a query registered after events
/// flowed only observes elements staged from then on — its first windows may
/// be partial, exactly as a newly subscribed consumer expects. Results,
/// ordering and latency stamping for queries registered before the first
/// event are element-identical to the batch paths (proved in the
/// `session_api` integration tests).
pub struct Session {
    strategy: Box<dyn DisorderControl>,
    core: MultiQueryCore,
    clock: ClockTracker,
    staged: Vec<StreamElement>,
    telemetry: Registry,
    run_events: Counter,
    queries_gauge: Gauge,
    delay_profile: Option<DelayProfile>,
    events: u64,
    heartbeats: u64,
    finished: bool,
}

impl Session {
    /// Build a session around a disorder-control strategy (telemetry
    /// disabled).
    pub fn new(strategy: Box<dyn DisorderControl>) -> Session {
        let telemetry = Registry::disabled();
        Session {
            core: MultiQueryCore::new(&telemetry),
            run_events: telemetry.counter("quill.run.events"),
            queries_gauge: telemetry.gauge("quill.session.queries"),
            telemetry,
            strategy,
            clock: ClockTracker::new(),
            staged: Vec::new(),
            delay_profile: None,
            events: 0,
            heartbeats: 0,
            finished: false,
        }
    }

    /// Record telemetry into `registry`: the strategy's `quill.buffer.*`
    /// instruments, `quill.run.events` / `quill.run.results` /
    /// `quill.merge.windows` counters and a `quill.session.queries` gauge.
    /// Builder-style; attach before the first event.
    pub fn with_telemetry(mut self, registry: &Registry) -> Session {
        self.telemetry = registry.clone();
        self.strategy.instrument(registry);
        self.core.instrument(registry);
        self.run_events = registry.counter("quill.run.events");
        self.queries_gauge = registry.gauge("quill.session.queries");
        self
    }

    /// Record pipeline spans into `spans`: [`Stage::BufferResidency`] per
    /// released event from the strategy's slack buffer and a query-tagged
    /// [`Stage::Deliver`] span per emitted result (window end → emission
    /// clock, both on the logical event-time clock). Builder-style; attach
    /// before the first event.
    pub fn with_spans(mut self, spans: &SpanRecorder) -> Session {
        self.strategy.attach_spans(spans);
        self.core.attach_spans(spans);
        self
    }

    /// Declare the expected transport-delay regime, enabling the plan
    /// analyzer's quality-feasibility checks at registration time.
    pub fn with_delay_profile(mut self, profile: DelayProfile) -> Session {
        self.delay_profile = Some(profile);
        self
    }

    /// Select the window state backend ([`WindowState::Fiba`] is the
    /// default; [`WindowState::Legacy`] restores the per-window/pane
    /// state for differential testing). Builder-style; attach before
    /// registering queries — already-registered operators keep theirs.
    pub fn with_window_state(mut self, state: WindowState) -> Session {
        self.core.set_window_state(state);
        self
    }

    /// Register a query with default [`QueryConfig`].
    ///
    /// # Errors
    /// Propagates invalid window/aggregate specifications; plans the
    /// analyzer denies are refused with
    /// [`EngineError::PlanRejected`].
    pub fn register(&mut self, spec: &QuerySpec) -> Result<QueryHandle> {
        self.register_with(spec, QueryConfig::default())
    }

    /// Register a query with explicit per-query options. The registration
    /// runs the static plan analyzer ([`analyze_plan`]) against this
    /// session's strategy and delay profile: deny-level findings refuse the
    /// registration, the rest ride along on [`QueryHandle::plan`].
    ///
    /// # Errors
    /// Propagates invalid window/aggregate specifications, refuses denied
    /// plans, and refuses registration on a finished session.
    pub fn register_with(&mut self, spec: &QuerySpec, cfg: QueryConfig) -> Result<QueryHandle> {
        if self.finished {
            return Err(EngineError::InvalidPipeline(
                "cannot register on a finished session".into(),
            ));
        }
        let mut opts = ExecOptions::sequential().with_telemetry(&self.telemetry);
        opts.required_completeness = cfg.required_completeness;
        opts.delay_profile = self.delay_profile;
        let mut plan = analyze_plan(spec, &self.strategy.kind(), &opts);
        plan.retain(|d| !SESSION_IRRELEVANT_RULES.contains(&d.rule.as_str()));
        if let Some(deny) = plan.iter().find(|d| d.severity == Severity::Deny) {
            return Err(EngineError::PlanRejected(format!(
                "[{}] {} (help: {})",
                deny.rule, deny.message, deny.help
            )));
        }
        let (id, state) = self.core.register(
            spec,
            cfg.required_completeness,
            cfg.result_capacity,
            cfg.latency_slo,
            LatencyRecorder::new(),
        )?;
        self.queries_gauge.set_u64(self.core.len() as u64);
        Ok(QueryHandle {
            id,
            state,
            plan: Arc::new(plan),
        })
    }

    /// Remove a query. Its handles stay pollable for already-emitted
    /// results; the returned stats are final.
    ///
    /// # Errors
    /// [`EngineError::InvalidPipeline`] for an unknown id.
    pub fn deregister(&mut self, id: QueryId) -> Result<QueryStats> {
        let slot = self.core.remove(id).ok_or_else(|| {
            EngineError::InvalidPipeline(format!("unknown query id {id} in session"))
        })?;
        self.queries_gauge.set_u64(self.core.len() as u64);
        let mut sub = slot.state.lock();
        sub.window = slot.op.stats();
        sub.closed = true;
        Ok(sub.stats())
    }

    /// Push one arriving event; any unlocked results land on the
    /// subscriptions of registered queries. No-op after
    /// [`Session::finish`].
    pub fn push(&mut self, e: Event) {
        if self.finished {
            return;
        }
        self.clock.observe(e.ts);
        self.run_events.inc();
        self.events += 1;
        self.staged.clear();
        self.strategy.on_event(e, &mut self.staged);
        self.route();
    }

    /// Apply a per-source heartbeat (a promise that no future event from
    /// `source` has a timestamp below `ts`): progress-driven strategies like
    /// [`crate::punctuated::PunctuatedBuffer`] advance their watermark and
    /// release buffered events; delay-driven strategies ignore it. No-op
    /// after [`Session::finish`].
    pub fn heartbeat(&mut self, source: &Key, ts: Timestamp) {
        if self.finished {
            return;
        }
        self.heartbeats += 1;
        self.staged.clear();
        self.strategy.on_heartbeat(source, ts, &mut self.staged);
        self.route();
    }

    /// End of stream: release everything buffered, finalize every open
    /// window (the strategy's `Flush` acts as the final watermark), and
    /// close all subscriptions. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.staged.clear();
        self.strategy.finish(&mut self.staged);
        self.route();
        self.core.close_all();
    }

    fn route(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let now = self.clock.clock().unwrap_or(Timestamp::MIN);
        for el in self.staged.drain(..) {
            self.core.process_element(el, now);
        }
        self.core.sync_stats();
    }

    /// Whether [`Session::finish`] ran.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Session-wide counters.
    pub fn stats(&self) -> SessionStats {
        let b = self.strategy.buffer_stats();
        SessionStats {
            events: self.events,
            heartbeats: self.heartbeats,
            queries: self.core.len(),
            results: self.core.results_total,
            current_k: self.strategy.current_k(),
            buffered: b.inserted.saturating_sub(b.released),
            clock: self.clock.clock(),
            finished: self.finished,
        }
    }

    /// The slack currently in force.
    pub fn current_k(&self) -> TimeDelta {
        self.strategy.current_k()
    }

    /// Strategy name.
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }

    /// Ids of all currently registered queries, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.core.slots.iter().map(|s| s.id).collect()
    }

    /// Describe one registered query (spec, target, live counters).
    pub fn query_info(&self, id: QueryId) -> Option<QueryInfo> {
        let slot = self.core.slots.iter().find(|s| s.id == id)?;
        let mut stats = slot.state.lock().stats();
        stats.window = slot.op.stats();
        Some(QueryInfo {
            id: slot.id,
            spec: slot.spec.clone(),
            required_completeness: slot.required_completeness,
            stats,
        })
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("strategy", &self.strategy.name())
            .field("queries", &self.core.len())
            .field("events", &self.events)
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute;
    use crate::strategy::FixedKSlack;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::prelude::{Row, Value, WindowSpec};

    fn query() -> QuerySpec {
        QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
        )
    }

    fn events(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let ts = if i % 5 == 3 {
                    (i * 10).saturating_sub(35)
                } else {
                    i * 10
                };
                Event::new(ts, i, Row::new([Value::Float(1.0)]))
            })
            .collect()
    }

    #[test]
    fn session_matches_batch_runner_results() {
        let evs = events(500);
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64)));
        let handle = session.register(&query()).unwrap();
        for e in &evs {
            session.push(e.clone());
        }
        session.finish();
        let live = handle.poll();

        let mut batch_strategy = FixedKSlack::new(50u64);
        let batch = execute(
            &evs,
            &mut batch_strategy,
            &query(),
            &ExecOptions::sequential(),
        )
        .unwrap();
        assert_eq!(live, batch.results);
        assert_eq!(handle.stats().emitted as usize, batch.results.len());
    }

    #[test]
    fn register_and_deregister_at_runtime() {
        let evs = events(400);
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64)));
        let first = session.register(&query()).unwrap();
        for e in &evs[..200] {
            session.push(e.clone());
        }
        // Register mid-stream: observes only the tail of the stream.
        let second = session.register(&query()).unwrap();
        assert_ne!(first.id(), second.id());
        for e in &evs[200..] {
            session.push(e.clone());
        }
        let final_stats = session.deregister(first.id()).unwrap();
        assert!(final_stats.closed);
        assert!(first.is_closed());
        assert!(session.deregister(first.id()).is_err(), "double deregister");
        session.finish();
        assert!(second.stats().emitted < final_stats.emitted + second.stats().emitted);
        assert!(!first.poll().is_empty(), "residual results stay pollable");
        assert!(!second.poll().is_empty());
        assert!(
            second.stats().window.accepted < final_stats.window.accepted,
            "the late subscriber saw fewer events"
        );
    }

    #[test]
    fn finished_session_refuses_work() {
        let mut session = Session::new(Box::new(FixedKSlack::new(10u64)));
        let handle = session.register(&query()).unwrap();
        session.push(Event::new(5u64, 0, Row::new([Value::Float(1.0)])));
        session.finish();
        assert!(session.finished());
        assert!(handle.is_closed());
        session.finish(); // idempotent
        session.push(Event::new(999u64, 1, Row::new([Value::Float(1.0)])));
        assert_eq!(session.stats().events, 1);
        assert!(session.register(&query()).is_err());
    }

    #[test]
    fn invalid_query_and_denied_plan_are_refused() {
        let mut session = Session::new(Box::new(FixedKSlack::new(10u64)));
        let bad = QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None);
        assert!(session.register(&bad).is_err());
        // Completeness outside (0, 1] is a deny-level plan finding.
        let cfg = QueryConfig::default().with_required_completeness(1.5);
        assert!(matches!(
            session.register_with(&query(), cfg),
            Err(EngineError::PlanRejected(_))
        ));
        // The session still works after refusals.
        assert!(session.register(&query()).is_ok());
    }

    #[test]
    fn bounded_subscription_drops_oldest_on_overflow() {
        let mut session = Session::new(Box::new(FixedKSlack::new(0u64)));
        let cfg = QueryConfig::default().with_result_capacity(2);
        let handle = session.register_with(&query(), cfg).unwrap();
        for i in 0..10u64 {
            session.push(Event::new(i * 100, i, Row::new([Value::Float(1.0)])));
        }
        session.finish();
        let stats = handle.stats();
        assert!(stats.overflow_dropped > 0);
        let kept = handle.poll();
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.emitted, kept.len() as u64 + stats.overflow_dropped);
        // The *newest* results survive.
        assert_eq!(kept.last().unwrap().window.end, Timestamp(1000));
    }

    #[test]
    fn heartbeats_advance_punctuated_watermarks() {
        use crate::punctuated::PunctuatedBuffer;
        let mut session = Session::new(Box::new(PunctuatedBuffer::new(0, 2)));
        let handle = session.register(&query()).unwrap();
        // Two sources; source 2 is silent, so nothing can be released...
        session.push(Event::new(
            150u64,
            0,
            Row::new([Value::Int(1), Value::Float(1.0)]),
        ));
        session.push(Event::new(
            250u64,
            1,
            Row::new([Value::Int(1), Value::Float(1.0)]),
        ));
        assert!(handle.poll().is_empty());
        // ...until its heartbeat vouches for its progress.
        session.heartbeat(&Key(Value::Int(2)), Timestamp(240));
        let results = handle.poll();
        assert_eq!(results.len(), 1, "window [100,200) released by heartbeat");
        assert_eq!(session.stats().heartbeats, 1);
    }

    #[test]
    fn telemetry_reflects_session_progress() {
        let registry = Registry::new();
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64))).with_telemetry(&registry);
        let handle = session.register(&query()).unwrap();
        for e in events(300) {
            session.push(e);
        }
        session.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("quill.run.events"), 300);
        assert_eq!(snap.counter("quill.run.results"), handle.stats().emitted);
        assert!(snap.counter("quill.merge.windows") > 0);
        assert_eq!(snap.gauge("quill.session.queries"), Some(1.0));
        assert_eq!(
            snap.counter("quill.buffer.inserted") + snap.counter("quill.buffer.late_passed"),
            300
        );
    }

    #[test]
    fn many_queries_share_one_buffer() {
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64)));
        let handles: Vec<QueryHandle> = (0..32)
            .map(|_| session.register(&query()).unwrap())
            .collect();
        for e in events(200) {
            session.push(e);
        }
        session.finish();
        let first = handles[0].poll();
        assert!(!first.is_empty());
        for h in &handles[1..] {
            assert_eq!(h.poll(), first, "identical queries see identical results");
        }
        // The buffer was paid once: 200 events inserted, not 200 × 32.
        let s = session.stats();
        assert_eq!(s.events, 200);
        assert_eq!(s.results, 32 * first.len() as u64);
    }

    #[test]
    fn latency_slo_breaches_are_counted_per_query() {
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64)));
        // K = 50 means a window closes ~50 event-time units after its end:
        // every watermark-closed window breaches an SLO of 10 and none
        // breach an SLO of 10_000.
        let tight = session
            .register_with(&query(), QueryConfig::default().with_latency_slo(10))
            .unwrap();
        let loose = session
            .register_with(&query(), QueryConfig::default().with_latency_slo(10_000))
            .unwrap();
        for i in 0..50u64 {
            session.push(Event::new(i * 10, i, Row::new([Value::Float(1.0)])));
        }
        session.finish();
        let t = tight.stats();
        assert!(t.slo_breaches > 0, "tight SLO must burn");
        assert!(t.slo_breaches <= t.emitted);
        assert_eq!(loose.stats().slo_breaches, 0, "loose SLO never burns");
        // No SLO configured → the counter stays untouched.
        let mut plain = Session::new(Box::new(FixedKSlack::new(50u64)));
        let h = plain.register(&query()).unwrap();
        for i in 0..50u64 {
            plain.push(Event::new(i * 10, i, Row::new([Value::Float(1.0)])));
        }
        plain.finish();
        assert_eq!(h.stats().slo_breaches, 0);
    }

    #[test]
    fn session_spans_reconcile_with_latency_accounting() {
        let spans = SpanRecorder::with_default_capacity();
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64))).with_spans(&spans);
        let handle = session.register(&query()).unwrap();
        for e in events(300) {
            session.push(e);
        }
        session.finish();
        let stats = handle.stats();
        let all = spans.spans();
        assert!(
            all.iter().any(|s| s.stage == Stage::BufferResidency),
            "buffer residency is traced through the strategy"
        );
        let deliver: Vec<_> = all.iter().filter(|s| s.stage == Stage::Deliver).collect();
        assert_eq!(deliver.len() as u64, stats.emitted);
        assert!(
            deliver.iter().all(|s| s.query == handle.id().raw()),
            "deliver spans are tagged with the registered query id"
        );
        // Span-derived end-to-end latency reconciles exactly with the
        // session's own accounting: both measure emission clock − window
        // end, saturating at zero.
        let sum: u64 = deliver.iter().map(|s| s.duration()).sum();
        let mean = sum as f64 / deliver.len() as f64;
        assert!(
            (mean - stats.mean_latency).abs() < 1e-9,
            "span mean {mean} != recorded mean {}",
            stats.mean_latency
        );
    }

    #[test]
    fn query_info_lists_registered_queries() {
        let mut session = Session::new(Box::new(FixedKSlack::new(50u64)));
        let cfg = QueryConfig::default().with_required_completeness(0.9);
        let h = session.register_with(&query(), cfg).unwrap();
        assert_eq!(session.query_ids(), vec![h.id()]);
        let info = session.query_info(h.id()).unwrap();
        assert_eq!(info.required_completeness, Some(0.9));
        assert_eq!(info.spec.aggregates.len(), 1);
        assert!(session.query_info(QueryId::from_raw(999)).is_none());
    }
}
