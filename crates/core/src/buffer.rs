//! The K-slack ordering buffer.
//!
//! [`SlackBuffer`] is the mechanism every disorder-control strategy shares:
//! arriving events are held until the *stream clock* (max event timestamp
//! seen) exceeds their timestamp by at least `K`, then released in timestamp
//! order followed by a watermark. The strategies differ only in how they set
//! `K` over time.
//!
//! ## Invariants (property-tested)
//!
//! * Released events are non-decreasing in `(ts, seq)`.
//! * The emitted watermark sequence is strictly increasing and never exceeds
//!   `clock − K_at_emission` ... i.e. every released watermark `w` is sound:
//!   all buffered events with `ts < w` were released before it.
//! * Changing `K` never regresses the watermark: shrinking `K` releases
//!   more events immediately; growing `K` merely pauses future releases.
//! * Events arriving behind the already-emitted watermark cannot be
//!   re-ordered anymore; they are handed back as *late passes* (forwarded
//!   downstream out of order, where the window operator accounts for them).

use quill_engine::prelude::{Event, StreamElement, TimeDelta, Timestamp};
use quill_telemetry::trace::{FlightRecorder, TraceKind};
use quill_telemetry::{Counter, Gauge, Registry, SpanRecorder, Stage};
use std::collections::BTreeMap;

/// Counters describing a buffer's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Events that entered the buffer.
    pub inserted: u64,
    /// Events released in order.
    pub released: u64,
    /// Events forwarded late (arrived behind the emitted watermark).
    pub late_passed: u64,
    /// High-water mark of buffered event count.
    pub max_buffered: usize,
    /// Sum over arrivals of the buffer size after insertion (for mean size).
    pub size_integral: u128,
}

impl BufferStats {
    /// Mean buffer size observed at arrival instants.
    pub fn mean_buffered(&self) -> f64 {
        if self.inserted == 0 {
            0.0
        } else {
            self.size_integral as f64 / self.inserted as f64
        }
    }
}

/// Telemetry handles for one buffer under the `quill.buffer.*` namespace.
/// Default-constructed handles are no-ops, so an un-instrumented buffer
/// pays one branch per update.
#[derive(Debug, Default)]
struct BufferTelemetry {
    inserted: Counter,
    released: Counter,
    late_passed: Counter,
    depth: Gauge,
    watermark_lag: Gauge,
}

/// A timestamp-ordering buffer with a dynamically adjustable slack bound.
#[derive(Debug)]
pub struct SlackBuffer {
    k: TimeDelta,
    buf: BTreeMap<(Timestamp, u64), Event>,
    clock: Timestamp,
    saw_event: bool,
    /// Exclusive upper bound of everything released so far: next release
    /// must have `ts >= watermark`.
    watermark: Timestamp,
    /// Control-only staging: events are forwarded immediately in arrival
    /// order (unordered) while the clock / watermark / K machinery, stats,
    /// telemetry, and trace behave exactly as in full mode. `pending` then
    /// tracks only per-timestamp counts of what a full buffer would hold.
    control_only: bool,
    pending: BTreeMap<Timestamp, u64>,
    pending_len: usize,
    stats: BufferStats,
    telemetry: BufferTelemetry,
    trace: FlightRecorder,
    spans: SpanRecorder,
}

impl SlackBuffer {
    /// A buffer with the given initial slack.
    pub fn new(k: impl Into<TimeDelta>) -> SlackBuffer {
        SlackBuffer {
            k: k.into(),
            buf: BTreeMap::new(),
            clock: Timestamp::MIN,
            saw_event: false,
            watermark: Timestamp::MIN,
            control_only: false,
            pending: BTreeMap::new(),
            pending_len: 0,
            stats: BufferStats::default(),
            telemetry: BufferTelemetry::default(),
            trace: FlightRecorder::disabled(),
            spans: SpanRecorder::disabled(),
        }
    }

    /// Attach `quill.buffer.*` instruments from `telemetry`: `inserted` /
    /// `released` / `late_passed` counters, a `depth` gauge (events held
    /// right now), and a `watermark_lag` gauge (stream clock minus emitted
    /// watermark — the reordering latency currently in force). With a
    /// disabled registry this is free.
    pub fn instrument(&mut self, telemetry: &Registry) {
        self.telemetry = BufferTelemetry {
            inserted: telemetry.counter("quill.buffer.inserted"),
            released: telemetry.counter("quill.buffer.released"),
            late_passed: telemetry.counter("quill.buffer.late_passed"),
            depth: telemetry.gauge("quill.buffer.depth"),
            watermark_lag: telemetry.gauge("quill.buffer.watermark_lag"),
        };
    }

    /// Attach a flight recorder (cloned; clones share the ring). The buffer
    /// records a [`TraceKind::LateArrival`] for every event forwarded behind
    /// the watermark and a [`TraceKind::BufferEmit`] for every watermark
    /// advance. A disabled recorder costs one branch per hook.
    pub fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.trace = trace.clone();
    }

    /// Attach a span recorder (cloned; clones share the ring). Every event
    /// release records a [`Stage::BufferResidency`] span from the event's
    /// timestamp to the watermark releasing it — the event-time latency the
    /// disorder-control buffer imposed on that event. Late passes record
    /// nothing (they were never held), and a flush release ends at the
    /// stream clock (the flush carries no event time of its own). A disabled
    /// recorder costs one branch per release batch.
    pub fn attach_spans(&mut self, spans: &SpanRecorder) {
        self.spans = spans.clone();
    }

    /// Switch to *control-only* staging: from now on every inserted event is
    /// forwarded immediately in arrival order (no reordering) and the buffer
    /// keeps only per-timestamp counts. The stream clock, watermark sequence,
    /// late-arrival classification, K handling, [`BufferStats`],
    /// `quill.buffer.*` telemetry, and trace records are all identical to
    /// full mode — only the payloads stop being held and sorted. A
    /// downstream per-shard stage (holding just its own keys) re-applies the
    /// ordering using the emitted watermarks. Call before the first insert.
    pub fn set_control_only(&mut self) {
        debug_assert!(
            !self.saw_event,
            "control-only mode must be enabled before any event"
        );
        self.control_only = true;
    }

    /// Whether the buffer is in control-only (pass-through) staging mode.
    pub fn is_control_only(&self) -> bool {
        self.control_only
    }

    /// Current slack bound.
    pub fn k(&self) -> TimeDelta {
        self.k
    }

    /// Stream clock (max event timestamp observed; MIN before any event).
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Watermark emitted so far.
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Number of events currently held (in control-only mode: the number a
    /// full buffer would hold).
    pub fn len(&self) -> usize {
        if self.control_only {
            self.pending_len
        } else {
            self.buf.len()
        }
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Change the slack bound. Takes effect immediately: shrinking may
    /// release events (returned via the next [`SlackBuffer::insert`] or an
    /// explicit [`SlackBuffer::drain_ready`] call); the watermark never
    /// regresses.
    pub fn set_k(&mut self, k: impl Into<TimeDelta>) {
        self.k = k.into();
    }

    /// Insert one arriving event, appending any releases (in order) plus a
    /// trailing watermark to `out`. An event behind the emitted watermark is
    /// forwarded immediately as a late pass (out of order, no watermark).
    pub fn insert(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        self.clock = if self.saw_event {
            self.clock.max(e.ts)
        } else {
            e.ts
        };
        self.saw_event = true;
        if e.ts < self.watermark {
            self.stats.late_passed += 1;
            self.telemetry.late_passed.inc();
            if self.trace.is_enabled() {
                self.trace.record(
                    e.ts.raw(),
                    0,
                    TraceKind::LateArrival {
                        lateness: self.watermark.delta_since(e.ts).raw(),
                        watermark: self.watermark.raw(),
                    },
                );
            }
            out.push(StreamElement::Event(e));
            // The clock may still have advanced; later events could now be
            // releasable.
            self.drain_ready(out);
            return;
        }
        self.stats.inserted += 1;
        self.telemetry.inserted.inc();
        if self.control_only {
            // Forward the payload right away (arrival order), but account
            // for it as buffered until the watermark passes its timestamp —
            // the event must precede any watermark this arrival triggers.
            *self.pending.entry(e.ts).or_insert(0) += 1;
            self.pending_len += 1;
            out.push(StreamElement::Event(e));
        } else {
            self.buf.insert((e.ts, e.seq), e);
        }
        self.stats.max_buffered = self.stats.max_buffered.max(self.len());
        self.stats.size_integral += self.len() as u128;
        self.drain_ready(out);
        self.telemetry.depth.set_u64(self.len() as u64);
    }

    /// Release every buffered event that the current clock and slack allow,
    /// advancing the watermark. Appends releases + watermark to `out`.
    pub fn drain_ready(&mut self, out: &mut Vec<StreamElement>) {
        if !self.saw_event {
            return;
        }
        // Everything with ts <= clock - K is safe to release: any future
        // event with a smaller timestamp would have delay > K.
        let safe = self.clock.saturating_sub(self.k);
        if safe <= self.watermark {
            return;
        }
        // Release events with ts <= safe (inclusive: a future event with the
        // same timestamp has a larger seq and still sorts after, so emitting
        // the boundary timestamp preserves order). Keep keys with ts > safe.
        let mut released = 0u64;
        let record_spans = self.spans.is_enabled();
        if self.control_only {
            let keep = self
                .pending
                .split_off(&Timestamp(safe.raw().saturating_add(1)));
            for (ts, n) in std::mem::replace(&mut self.pending, keep) {
                released += n;
                if record_spans {
                    // One residency span per pending event, same as full
                    // mode — the payloads were forwarded early but a full
                    // buffer would have held each until this watermark.
                    for _ in 0..n {
                        self.spans
                            .record(Stage::BufferResidency, ts.raw(), safe.raw(), 0);
                    }
                }
            }
            self.pending_len -= released as usize;
            self.stats.released += released;
            self.telemetry.released.add(released);
        } else {
            let keep = self
                .buf
                .split_off(&(Timestamp(safe.raw().saturating_add(1)), 0));
            for (_, e) in std::mem::replace(&mut self.buf, keep) {
                self.stats.released += 1;
                self.telemetry.released.inc();
                released += 1;
                if record_spans {
                    self.spans
                        .record(Stage::BufferResidency, e.ts.raw(), safe.raw(), 0);
                }
                out.push(StreamElement::Event(e));
            }
        }
        if self.trace.is_enabled() {
            self.trace.record(
                safe.raw(),
                0,
                TraceKind::BufferEmit {
                    released,
                    watermark: safe.raw(),
                },
            );
        }
        self.watermark = safe;
        self.telemetry
            .watermark_lag
            .set_u64(self.clock.delta_since(safe).raw());
        out.push(StreamElement::Watermark(safe));
    }

    /// End of stream: release everything in order and emit `Flush`.
    pub fn finish(&mut self, out: &mut Vec<StreamElement>) {
        let mut released = 0u64;
        let record_spans = self.spans.is_enabled();
        if self.control_only {
            released = self.pending_len as u64;
            if record_spans {
                for (ts, n) in std::mem::take(&mut self.pending) {
                    for _ in 0..n {
                        self.spans
                            .record(Stage::BufferResidency, ts.raw(), self.clock.raw(), 0);
                    }
                }
            } else {
                self.pending.clear();
            }
            self.pending_len = 0;
            self.stats.released += released;
            self.telemetry.released.add(released);
        } else {
            for (_, e) in std::mem::take(&mut self.buf) {
                self.stats.released += 1;
                self.telemetry.released.inc();
                released += 1;
                if record_spans {
                    // Flush carries no event time: residency ends at the
                    // stream clock (the latest timestamp the buffer saw).
                    self.spans
                        .record(Stage::BufferResidency, e.ts.raw(), self.clock.raw(), 0);
                }
                out.push(StreamElement::Event(e));
            }
        }
        if self.trace.is_enabled() {
            self.trace.record(
                self.clock.raw(),
                0,
                TraceKind::BufferEmit {
                    released,
                    watermark: u64::MAX,
                },
            );
        }
        self.watermark = Timestamp::MAX;
        self.telemetry.depth.set_u64(0);
        self.telemetry.watermark_lag.set_u64(0);
        out.push(StreamElement::Flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::{Row, Value};

    fn ev(ts: u64, seq: u64) -> Event {
        Event::new(ts, seq, Row::new([Value::Int(ts as i64)]))
    }

    fn feed(buf: &mut SlackBuffer, events: Vec<Event>) -> Vec<StreamElement> {
        let mut out = Vec::new();
        for e in events {
            buf.insert(e, &mut out);
        }
        buf.finish(&mut out);
        out
    }

    fn released_ts(out: &[StreamElement]) -> Vec<u64> {
        out.iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.ts.raw())
            .collect()
    }

    #[test]
    fn zero_slack_passes_through() {
        let mut b = SlackBuffer::new(0u64);
        let out = feed(&mut b, vec![ev(1, 0), ev(2, 1), ev(3, 2)]);
        assert_eq!(released_ts(&out), vec![1, 2, 3]);
        assert_eq!(b.stats().late_passed, 0);
    }

    #[test]
    fn slack_reorders_within_k() {
        let mut b = SlackBuffer::new(10u64);
        // Arrival: 10, 5, 20, 12 — with K=10, everything reorders cleanly.
        let out = feed(&mut b, vec![ev(10, 0), ev(5, 1), ev(20, 2), ev(12, 3)]);
        assert_eq!(released_ts(&out), vec![5, 10, 12, 20]);
        assert_eq!(b.stats().late_passed, 0);
    }

    #[test]
    fn event_later_than_k_is_late_passed() {
        let mut b = SlackBuffer::new(5u64);
        // Clock reaches 20 → watermark 15; then ts=8 arrives (delay 12 > 5).
        let mut out = Vec::new();
        b.insert(ev(20, 0), &mut out);
        assert_eq!(b.watermark(), Timestamp(15));
        out.clear();
        b.insert(ev(8, 1), &mut out);
        assert_eq!(b.stats().late_passed, 1);
        // The late event is forwarded immediately, unbuffered.
        assert_eq!(out[0].as_event().unwrap().ts, Timestamp(8));
    }

    #[test]
    fn watermarks_strictly_monotone_and_sound() {
        let mut b = SlackBuffer::new(7u64);
        let arrivals = vec![ev(10, 0), ev(3, 1), ev(25, 2), ev(19, 3), ev(40, 4)];
        let out = feed(&mut b, arrivals);
        let mut last_wm = None;
        let mut max_released = 0u64;
        for el in &out {
            match el {
                StreamElement::Event(e) => max_released = max_released.max(e.ts.raw()),
                StreamElement::Watermark(w) => {
                    if let Some(l) = last_wm {
                        assert!(*w > l, "watermark regressed");
                    }
                    last_wm = Some(*w);
                }
                StreamElement::Flush => {}
            }
        }
    }

    #[test]
    fn releases_are_in_timestamp_order_until_flush() {
        let mut b = SlackBuffer::new(15u64);
        let arrivals = vec![
            ev(10, 0),
            ev(2, 1),
            ev(30, 2),
            ev(22, 3),
            ev(50, 4),
            ev(45, 5),
        ];
        let out = feed(&mut b, arrivals);
        let ts = released_ts(&out);
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn shrinking_k_releases_immediately() {
        let mut b = SlackBuffer::new(100u64);
        let mut out = Vec::new();
        b.insert(ev(10, 0), &mut out);
        b.insert(ev(50, 1), &mut out);
        assert_eq!(released_ts(&out), Vec::<u64>::new());
        assert_eq!(b.len(), 2);
        b.set_k(10u64);
        b.drain_ready(&mut out);
        // clock=50, K=10 → watermark 40 → ts=10 released.
        assert_eq!(released_ts(&out), vec![10]);
        assert_eq!(b.watermark(), Timestamp(40));
    }

    #[test]
    fn growing_k_does_not_regress_watermark() {
        let mut b = SlackBuffer::new(0u64);
        let mut out = Vec::new();
        b.insert(ev(100, 0), &mut out);
        assert_eq!(b.watermark(), Timestamp(100));
        b.set_k(50u64);
        out.clear();
        b.insert(ev(120, 1), &mut out);
        // clock=120, K=50 → safe=70 < watermark 100 → no regression, and the
        // event stays buffered.
        assert_eq!(b.watermark(), Timestamp(100));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn all_events_are_accounted_for() {
        let mut b = SlackBuffer::new(8u64);
        let n = 500u64;
        let arrivals: Vec<Event> = (0..n)
            .map(|i| ev((i * 13 + (i % 7) * 31) % 1000, i))
            .collect();
        let out = feed(&mut b, arrivals);
        let events: Vec<&Event> = out.iter().filter_map(|e| e.as_event()).collect();
        assert_eq!(events.len() as u64, n);
        let s = b.stats();
        assert_eq!(s.released + s.late_passed, n);
    }

    #[test]
    fn mean_buffered_tracks_occupancy() {
        let mut b = SlackBuffer::new(1000u64);
        let mut out = Vec::new();
        for i in 0..10 {
            b.insert(ev(i, i), &mut out);
        }
        assert!(b.stats().mean_buffered() > 4.0);
        assert_eq!(b.stats().max_buffered, 10);
    }

    #[test]
    fn finish_flushes_everything_in_order() {
        let mut b = SlackBuffer::new(1_000_000u64);
        let out = feed(&mut b, vec![ev(5, 0), ev(1, 1), ev(3, 2)]);
        assert_eq!(released_ts(&out), vec![1, 3, 5]);
        assert!(out.last().unwrap().is_flush());
    }

    #[test]
    fn instrumented_buffer_mirrors_stats() {
        let reg = Registry::new();
        let mut b = SlackBuffer::new(5u64);
        b.instrument(&reg);
        let mut out = Vec::new();
        b.insert(ev(20, 0), &mut out); // watermark 15
        b.insert(ev(8, 1), &mut out); // late pass
        b.insert(ev(30, 2), &mut out);
        b.finish(&mut out);
        let snap = reg.snapshot();
        let s = b.stats();
        assert_eq!(snap.counter("quill.buffer.inserted"), s.inserted);
        assert_eq!(snap.counter("quill.buffer.released"), s.released);
        assert_eq!(snap.counter("quill.buffer.late_passed"), s.late_passed);
        assert_eq!(snap.gauge("quill.buffer.depth"), Some(0.0));
    }

    #[test]
    fn trace_records_late_arrivals_and_emits() {
        let trace = FlightRecorder::new(64);
        let mut b = SlackBuffer::new(5u64);
        b.attach_trace(&trace);
        let mut out = Vec::new();
        b.insert(ev(20, 0), &mut out); // watermark 15 → one BufferEmit
        b.insert(ev(8, 1), &mut out); // lateness 7 behind watermark 15
        b.finish(&mut out);
        let events = trace.events();
        assert!(events.iter().any(|t| matches!(
            t.kind,
            TraceKind::LateArrival {
                lateness: 7,
                watermark: 15
            }
        ) && t.at == 8));
        assert!(events
            .iter()
            .any(|t| matches!(t.kind, TraceKind::BufferEmit { watermark: 15, .. })));
        assert!(events.iter().any(|t| matches!(
            t.kind,
            TraceKind::BufferEmit {
                watermark: u64::MAX,
                ..
            }
        )));
    }

    /// Arrival pattern with reordering, a boundary duplicate, and a late
    /// pass — used to compare full vs control-only accounting.
    fn disorderly_arrivals() -> Vec<Event> {
        vec![
            ev(10, 0),
            ev(5, 1),
            ev(20, 2),
            ev(12, 3),
            ev(8, 4), // behind watermark once K=5 and clock=20
            ev(20, 5),
            ev(35, 6),
        ]
    }

    #[test]
    fn control_only_forwards_in_arrival_order_with_identical_watermarks() {
        let mut full = SlackBuffer::new(5u64);
        let mut hollow = SlackBuffer::new(5u64);
        hollow.set_control_only();
        let full_out = feed(&mut full, disorderly_arrivals());
        let hollow_out = feed(&mut hollow, disorderly_arrivals());
        // Hollow mode forwards every event exactly once, in arrival order.
        let seqs: Vec<u64> = hollow_out
            .iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5, 6]);
        // The control stream (watermarks + flush) is element-identical.
        let wm = |out: &[StreamElement]| -> Vec<StreamElement> {
            out.iter()
                .filter(|e| !matches!(e, StreamElement::Event(_)))
                .cloned()
                .collect()
        };
        assert_eq!(wm(&hollow_out), wm(&full_out));
        // Stats, clock, and watermark agree exactly with full mode.
        assert_eq!(hollow.stats(), full.stats());
        assert_eq!(hollow.clock(), full.clock());
        assert_eq!(hollow.watermark(), full.watermark());
        assert!(
            hollow.stats().late_passed > 0,
            "fixture must exercise late passes"
        );
    }

    #[test]
    fn control_only_emits_event_before_the_watermark_it_triggers() {
        let mut b = SlackBuffer::new(0u64);
        b.set_control_only();
        let mut out = Vec::new();
        b.insert(ev(10, 0), &mut out);
        // With K=0 the arrival instantly advances the watermark to its own
        // timestamp; the payload must still precede that watermark so a
        // downstream stage can classify it as on time.
        assert_eq!(out[0].as_event().unwrap().seq, 0);
        assert_eq!(out[1], StreamElement::Watermark(Timestamp(10)));
    }

    #[test]
    fn control_only_mirrors_instrumented_counters() {
        let reg = Registry::new();
        let mut b = SlackBuffer::new(5u64);
        b.set_control_only();
        b.instrument(&reg);
        let mut out = Vec::new();
        for e in disorderly_arrivals() {
            b.insert(e, &mut out);
        }
        b.finish(&mut out);
        let snap = reg.snapshot();
        let s = b.stats();
        assert_eq!(snap.counter("quill.buffer.inserted"), s.inserted);
        assert_eq!(snap.counter("quill.buffer.released"), s.released);
        assert_eq!(snap.counter("quill.buffer.late_passed"), s.late_passed);
        assert_eq!(snap.gauge("quill.buffer.depth"), Some(0.0));
        assert_eq!(s.released + s.late_passed, 7);
    }

    #[test]
    fn spans_attribute_buffer_residency_per_release() {
        let spans = SpanRecorder::new(64);
        let mut b = SlackBuffer::new(5u64);
        b.attach_spans(&spans);
        let mut out = Vec::new();
        b.insert(ev(10, 0), &mut out);
        b.insert(ev(20, 1), &mut out); // watermark 15 releases ts=10
        b.insert(ev(8, 2), &mut out); // late pass: no residency span
        b.finish(&mut out); // flush releases ts=20 at clock 20
        let rec = spans.spans();
        assert!(rec.iter().all(|s| s.stage == Stage::BufferResidency));
        let pairs: Vec<(u64, u64)> = rec.iter().map(|s| (s.begin, s.end)).collect();
        assert_eq!(pairs, vec![(10, 15), (20, 20)]);

        // Control-only mode attributes the identical residency per event,
        // even though payloads were forwarded at arrival.
        let hollow_spans = SpanRecorder::new(64);
        let mut hollow = SlackBuffer::new(5u64);
        hollow.set_control_only();
        hollow.attach_spans(&hollow_spans);
        let mut out = Vec::new();
        hollow.insert(ev(10, 0), &mut out);
        hollow.insert(ev(20, 1), &mut out);
        hollow.insert(ev(8, 2), &mut out);
        hollow.finish(&mut out);
        let hollow_pairs: Vec<(u64, u64)> = hollow_spans
            .spans()
            .iter()
            .map(|s| (s.begin, s.end))
            .collect();
        assert_eq!(hollow_pairs, pairs);
    }

    #[test]
    fn empty_finish_is_just_flush() {
        let mut b = SlackBuffer::new(10u64);
        let mut out = Vec::new();
        b.finish(&mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_flush());
    }
}
