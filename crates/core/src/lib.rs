//! # quill-core
//!
//! Quality-driven disorder control for continuous queries over out-of-order
//! data streams — a from-scratch reconstruction of the system behind
//! *"Quality-Driven Continuous Query Execution over Out-of-Order Data
//! Streams"* (SIGMOD 2015); see DESIGN.md for the reconstruction notes.
//!
//! The user states a result-quality target (window completeness or maximum
//! relative aggregate error); the [`aq::AqKSlack`] strategy continuously
//! sizes the input ordering buffer so the target is met with minimal result
//! latency, adapting to non-stationary delays. Baselines
//! ([`strategy::DropAll`], [`strategy::FixedKSlack`], [`strategy::MpKSlack`],
//! [`strategy::OracleBuffer`]) share the same [`buffer::SlackBuffer`]
//! mechanism and differ only in their K policy.
//!
//! Execution goes through one facade: [`runner::execute`] (and
//! [`shared::execute_shared`] for multi-query runs), with
//! [`runner::ExecOptions`] selecting sequential vs. keyed-parallel execution
//! and optionally attaching a [`quill_telemetry::Registry`] for runtime
//! observability.
//!
//! ## Quick example
//!
//! ```
//! use quill_core::prelude::*;
//!
//! // An out-of-order toy stream.
//! let events = vec![
//!     Event::new(10u64, 0, Row::new([Value::Float(1.0)])),
//!     Event::new(5u64, 1, Row::new([Value::Float(2.0)])),
//!     Event::new(25u64, 2, Row::new([Value::Float(3.0)])),
//! ];
//! let query = QuerySpec::builder()
//!     .window(WindowSpec::tumbling(10u64))
//!     .aggregate(AggregateKind::Sum, 0, "sum")
//!     .build()
//!     .unwrap();
//! let mut strategy = AqKSlack::for_completeness(0.95);
//! let out = execute(&events, &mut strategy, &query, &ExecOptions::sequential()).unwrap();
//! assert_eq!(out.quality.windows_total, 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aq;
pub mod buffer;
pub mod controller;
pub mod estimator;
pub mod online;
pub mod plan;
pub mod punctuated;
pub mod quality;
pub mod runner;
pub mod session;
pub mod shared;
pub mod strategy;

/// Convenient glob-import surface: the execution facade, query building,
/// every strategy, telemetry, and the engine's own prelude (events, rows,
/// windows, aggregates).
pub mod prelude {
    pub use crate::aq::{AqConfig, AqKSlack, AqStats};
    pub use crate::buffer::{BufferStats, SlackBuffer};
    pub use crate::controller::PiController;
    pub use crate::estimator::{DelayEstimator, DistEstimator, EstimatorKind, HistogramEstimator};
    #[allow(deprecated)]
    pub use crate::online::OnlineQuery;
    pub use crate::plan::{
        analyze_plan, parse_plan_jsonl, DelayProfile, Diagnostic as PlanDiagnostic,
        Severity as PlanSeverity, StrategyKind,
    };
    pub use crate::punctuated::PunctuatedBuffer;
    pub use crate::quality::{QualityTarget, SensitivityModel};
    pub use crate::runner::{
        execute, stage_strategy, ExecOptions, QuerySpec, QuerySpecBuilder, RunOutput, StagedStream,
    };
    pub use crate::session::{
        QueryConfig, QueryHandle, QueryId, QueryInfo, QueryStats, Session, SessionStats,
    };
    pub use crate::shared::{
        execute_shared, strictest_completeness, SharedQueryOutput, SharedRunOutput,
    };
    pub use crate::strategy::{DisorderControl, DropAll, FixedKSlack, MpKSlack, OracleBuffer};
    pub use quill_engine::parallel::ParallelConfig;
    pub use quill_engine::prelude::*;
    pub use quill_telemetry::trace::{
        parse_post_mortems, post_mortems_to_lines, write_post_mortems_jsonl, write_trace_jsonl,
        FlightRecorder, KChangeReason, PostMortem, ProvenanceBuilder, ProvenanceRecord, TraceEvent,
        TraceKind,
    };
    pub use quill_telemetry::{Registry, ReporterConfig, Snapshot, TelemetryReporter};
}
