//! # quill-core
//!
//! Quality-driven disorder control for continuous queries over out-of-order
//! data streams — a from-scratch reconstruction of the system behind
//! *"Quality-Driven Continuous Query Execution over Out-of-Order Data
//! Streams"* (SIGMOD 2015); see DESIGN.md for the reconstruction notes.
//!
//! The user states a result-quality target (window completeness or maximum
//! relative aggregate error); the [`aq::AqKSlack`] strategy continuously
//! sizes the input ordering buffer so the target is met with minimal result
//! latency, adapting to non-stationary delays. Baselines
//! ([`strategy::DropAll`], [`strategy::FixedKSlack`], [`strategy::MpKSlack`],
//! [`strategy::OracleBuffer`]) share the same [`buffer::SlackBuffer`]
//! mechanism and differ only in their K policy.
//!
//! ## Quick example
//!
//! ```
//! use quill_core::prelude::*;
//! use quill_engine::prelude::*;
//!
//! // An out-of-order toy stream.
//! let events = vec![
//!     Event::new(10u64, 0, Row::new([Value::Float(1.0)])),
//!     Event::new(5u64, 1, Row::new([Value::Float(2.0)])),
//!     Event::new(25u64, 2, Row::new([Value::Float(3.0)])),
//! ];
//! let query = QuerySpec::new(
//!     WindowSpec::tumbling(10u64),
//!     vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
//!     None,
//! );
//! let mut strategy = AqKSlack::for_completeness(0.95);
//! let out = run_query(&events, &mut strategy, &query).unwrap();
//! assert_eq!(out.quality.windows_total, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aq;
pub mod buffer;
pub mod controller;
pub mod estimator;
pub mod online;
pub mod punctuated;
pub mod quality;
pub mod runner;
pub mod shared;
pub mod strategy;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::aq::{AqConfig, AqKSlack, AqStats};
    pub use crate::buffer::{BufferStats, SlackBuffer};
    pub use crate::controller::PiController;
    pub use crate::estimator::{DelayEstimator, DistEstimator, EstimatorKind, HistogramEstimator};
    pub use crate::online::OnlineQuery;
    pub use crate::punctuated::PunctuatedBuffer;
    pub use crate::quality::{QualityTarget, SensitivityModel};
    pub use crate::runner::{run_query, QuerySpec, RunOutput};
    pub use crate::shared::{run_shared, strictest_completeness, SharedRunOutput};
    pub use crate::strategy::{DisorderControl, DropAll, FixedKSlack, MpKSlack, OracleBuffer};
}
