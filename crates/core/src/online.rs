//! Online (push-based) quality-driven query execution.
//!
//! [`execute`](crate::runner::execute) is batch-style: it consumes a
//! finished event vector and scores against the oracle afterwards.
//! [`OnlineQuery`] is the production-facing interface: construct it once,
//! [`push`](OnlineQuery::push) events as they arrive, and collect
//! [`WindowResult`]s as they are emitted — with live introspection of the
//! current slack, buffer occupancy and result latency. No oracle is
//! involved (ground truth does not exist online); quality is whatever the
//! strategy's target promises.
//!
//! ```
//! use quill_core::online::OnlineQuery;
//! use quill_core::prelude::*;
//! use quill_engine::prelude::*;
//!
//! let query = QuerySpec::new(
//!     WindowSpec::tumbling(10u64),
//!     vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
//!     None,
//! );
//! let mut q = OnlineQuery::new(Box::new(AqKSlack::for_completeness(0.9)), &query).unwrap();
//! for (seq, ts) in [(0u64, 5u64), (1, 3), (2, 25), (3, 17), (4, 40)] {
//!     let results = q.push(Event::new(ts, seq, Row::new([Value::Float(1.0)])));
//!     for r in results {
//!         println!("window {} -> {}", r.window, r.aggregates[0]);
//!     }
//! }
//! let tail = q.finish();
//! assert!(!tail.is_empty());
//! ```

use crate::runner::QuerySpec;
use crate::strategy::DisorderControl;
use quill_engine::error::Result;
use quill_engine::event::{ClockTracker, Event, StreamElement};
use quill_engine::operator::{
    LatePolicy, Operator, WindowAggregateOp, WindowOpStats, WindowResult,
};
use quill_engine::time::{TimeDelta, Timestamp};
use quill_metrics::LatencyRecorder;

/// A continuously running windowed query with pluggable disorder control.
pub struct OnlineQuery {
    strategy: Box<dyn DisorderControl>,
    op: WindowAggregateOp,
    clock: ClockTracker,
    latency: LatencyRecorder,
    staged: Vec<StreamElement>,
    results_emitted: u64,
    finished: bool,
}

impl OnlineQuery {
    /// Build an online query.
    ///
    /// # Errors
    /// Propagates invalid window/aggregate specifications.
    pub fn new(strategy: Box<dyn DisorderControl>, query: &QuerySpec) -> Result<OnlineQuery> {
        Ok(OnlineQuery {
            strategy,
            op: WindowAggregateOp::new(
                query.window,
                query.aggregates.clone(),
                query.key_field,
                LatePolicy::Drop,
            )?,
            clock: ClockTracker::new(),
            latency: LatencyRecorder::new(),
            staged: Vec::new(),
            results_emitted: 0,
            finished: false,
        })
    }

    /// Push one arriving event; returns any window results it unlocked.
    ///
    /// Pushing after [`finish`](OnlineQuery::finish) is a no-op returning no
    /// results.
    pub fn push(&mut self, e: Event) -> Vec<WindowResult> {
        if self.finished {
            return Vec::new();
        }
        self.clock.observe(e.ts);
        self.staged.clear();
        self.strategy.on_event(e, &mut self.staged);
        self.route_staged()
    }

    /// End of stream: flush everything still buffered.
    pub fn finish(&mut self) -> Vec<WindowResult> {
        if self.finished {
            return Vec::new();
        }
        self.finished = true;
        self.staged.clear();
        self.strategy.finish(&mut self.staged);
        self.route_staged()
    }

    fn route_staged(&mut self) -> Vec<WindowResult> {
        let now = self.clock.clock().unwrap_or(Timestamp::MIN);
        let mut results = Vec::new();
        let op = &mut self.op;
        let latency = &mut self.latency;
        let emitted = &mut self.results_emitted;
        for el in self.staged.drain(..) {
            op.process(el, &mut |o| {
                if let StreamElement::Event(out_ev) = o {
                    if let Some(r) = WindowResult::from_row(&out_ev.row) {
                        latency.record(now.delta_since(r.window.end));
                        *emitted += 1;
                        results.push(r);
                    }
                }
            });
        }
        results
    }

    /// The slack currently in force.
    pub fn current_k(&self) -> TimeDelta {
        self.strategy.current_k()
    }

    /// Events currently held in the ordering buffer.
    pub fn buffered(&self) -> u64 {
        let s = self.strategy.buffer_stats();
        s.inserted - s.released
    }

    /// The stream clock (max event timestamp observed).
    pub fn clock(&self) -> Option<Timestamp> {
        self.clock.clock()
    }

    /// Results emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Mean result latency so far (event-time units).
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Approximate latency quantile so far.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        self.latency.quantile(q)
    }

    /// Window-operator counters (accepted / late-dropped / emitted).
    pub fn window_stats(&self) -> WindowOpStats {
        self.op.stats()
    }

    /// Strategy name.
    pub fn strategy_name(&self) -> String {
        self.strategy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aq::AqKSlack;
    use crate::runner::{execute, ExecOptions};
    use crate::strategy::FixedKSlack;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::prelude::{Row, Value, WindowSpec};

    fn query() -> QuerySpec {
        QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
        )
    }

    fn events(n: u64) -> Vec<Event> {
        // Mildly disordered deterministic pattern.
        (0..n)
            .map(|i| {
                let ts = if i % 5 == 3 {
                    (i * 10).saturating_sub(35)
                } else {
                    i * 10
                };
                Event::new(ts, i, Row::new([Value::Float(1.0)]))
            })
            .collect()
    }

    #[test]
    fn online_matches_batch_runner_results() {
        let evs = events(500);
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(50u64)), &query()).unwrap();
        let mut online_results = Vec::new();
        for e in &evs {
            online_results.extend(online.push(e.clone()));
        }
        online_results.extend(online.finish());

        let mut batch_strategy = FixedKSlack::new(50u64);
        let batch = execute(
            &evs,
            &mut batch_strategy,
            &query(),
            &ExecOptions::sequential(),
        )
        .unwrap();
        assert_eq!(online_results, batch.results);
        assert_eq!(online.results_emitted() as usize, batch.results.len());
    }

    #[test]
    fn results_arrive_incrementally_not_only_at_finish() {
        let evs = events(500);
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(50u64)), &query()).unwrap();
        let mut early = 0;
        for e in &evs {
            early += online.push(e.clone()).len();
        }
        let tail = online.finish().len();
        assert!(early > 0, "no incremental results");
        assert!(early > tail, "most results should arrive before flush");
    }

    #[test]
    fn introspection_reflects_progress() {
        let mut online =
            OnlineQuery::new(Box::new(AqKSlack::for_completeness(0.9)), &query()).unwrap();
        assert_eq!(online.clock(), None);
        assert_eq!(online.buffered(), 0);
        for e in events(300) {
            online.push(e);
        }
        assert!(online.clock().is_some());
        assert!(online.strategy_name().contains("aq"));
        assert!(online.mean_latency() >= 0.0);
        online.finish();
        assert_eq!(online.buffered(), 0);
        let ws = online.window_stats();
        assert_eq!(ws.accepted + ws.late_dropped, 300);
    }

    #[test]
    fn push_after_finish_is_noop() {
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(10u64)), &query()).unwrap();
        online.push(Event::new(5u64, 0, Row::new([Value::Float(1.0)])));
        let first = online.finish();
        assert!(!first.is_empty());
        assert!(online.finish().is_empty());
        assert!(online
            .push(Event::new(999u64, 1, Row::new([Value::Float(1.0)])))
            .is_empty());
    }

    #[test]
    fn invalid_query_is_rejected() {
        let bad = QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None);
        assert!(OnlineQuery::new(Box::new(FixedKSlack::new(1u64)), &bad).is_err());
    }
}
