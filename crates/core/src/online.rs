//! Online (push-based) quality-driven query execution — **deprecated** in
//! favor of [`crate::session::Session`].
//!
//! [`OnlineQuery`] was the original single-query push surface. It survives
//! as a thin wrapper over a one-query [`Session`] so existing callers keep
//! byte-identical behaviour, but new code should use the session API, which
//! adds runtime registration/deregistration, multi-query fan-out over one
//! shared buffer, per-source heartbeats and bounded result subscriptions.
//!
//! # Migration
//!
//! | `OnlineQuery` | `Session` equivalent |
//! |---|---|
//! | `OnlineQuery::new(strategy, &query)?` | `let mut s = Session::new(strategy); let h = s.register(&query)?;` |
//! | `q.push(event)` (returns results) | `s.push(event); h.poll()` |
//! | `q.finish()` (returns results) | `s.finish(); h.poll()` |
//! | `q.current_k()` / `q.buffered()` / `q.clock()` | `s.stats().current_k` / `.buffered` / `.clock` |
//! | `q.results_emitted()` / `q.mean_latency()` | `h.stats().emitted` / `.mean_latency` |
//! | `q.latency_quantile(p)` | `h.latency_quantile(p)` |
//! | `q.window_stats()` | `h.stats().window` |
//! | `q.strategy_name()` | `s.strategy_name()` |

#![allow(deprecated)]

use crate::runner::QuerySpec;
use crate::session::{QueryHandle, Session};
use crate::strategy::DisorderControl;
use quill_engine::error::Result;
use quill_engine::event::Event;
use quill_engine::operator::{WindowOpStats, WindowResult};
use quill_engine::time::{TimeDelta, Timestamp};

/// A continuously running windowed query with pluggable disorder control.
///
/// Deprecated: this is now a fixed single-query view over
/// [`Session`] — see the [module docs](self) for the migration
/// table. Results are byte-identical to a session with one registered query
/// (and to the batch [`crate::runner::execute`] path on the same events).
#[deprecated(note = "use `Session` + `QueryHandle` (see quill_core::session)")]
pub struct OnlineQuery {
    session: Session,
    handle: QueryHandle,
}

impl OnlineQuery {
    /// Build an online query.
    ///
    /// # Errors
    /// Propagates invalid window/aggregate specifications.
    pub fn new(strategy: Box<dyn DisorderControl>, query: &QuerySpec) -> Result<OnlineQuery> {
        let mut session = Session::new(strategy);
        let handle = session.register(query)?;
        Ok(OnlineQuery { session, handle })
    }

    /// Push one arriving event; returns any window results it unlocked.
    ///
    /// Pushing after [`finish`](OnlineQuery::finish) is a no-op returning no
    /// results.
    pub fn push(&mut self, e: Event) -> Vec<WindowResult> {
        if self.session.finished() {
            return Vec::new();
        }
        self.session.push(e);
        self.handle.poll()
    }

    /// End of stream: flush everything still buffered.
    pub fn finish(&mut self) -> Vec<WindowResult> {
        if self.session.finished() {
            return Vec::new();
        }
        self.session.finish();
        self.handle.poll()
    }

    /// The slack currently in force.
    pub fn current_k(&self) -> TimeDelta {
        self.session.current_k()
    }

    /// Events currently held in the ordering buffer.
    pub fn buffered(&self) -> u64 {
        self.session.stats().buffered
    }

    /// The stream clock (max event timestamp observed).
    pub fn clock(&self) -> Option<Timestamp> {
        self.session.stats().clock
    }

    /// Results emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.handle.stats().emitted
    }

    /// Mean result latency so far (event-time units).
    pub fn mean_latency(&self) -> f64 {
        self.handle.stats().mean_latency
    }

    /// Approximate latency quantile so far.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        self.handle.latency_quantile(q)
    }

    /// Window-operator counters (accepted / late-dropped / emitted).
    pub fn window_stats(&self) -> WindowOpStats {
        self.handle.stats().window
    }

    /// Strategy name.
    pub fn strategy_name(&self) -> String {
        self.session.strategy_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aq::AqKSlack;
    use crate::runner::{execute, ExecOptions};
    use crate::strategy::FixedKSlack;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::prelude::{Row, Value, WindowSpec};

    fn query() -> QuerySpec {
        QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
        )
    }

    fn events(n: u64) -> Vec<Event> {
        // Mildly disordered deterministic pattern.
        (0..n)
            .map(|i| {
                let ts = if i % 5 == 3 {
                    (i * 10).saturating_sub(35)
                } else {
                    i * 10
                };
                Event::new(ts, i, Row::new([Value::Float(1.0)]))
            })
            .collect()
    }

    #[test]
    fn online_matches_batch_runner_results() {
        let evs = events(500);
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(50u64)), &query()).unwrap();
        let mut online_results = Vec::new();
        for e in &evs {
            online_results.extend(online.push(e.clone()));
        }
        online_results.extend(online.finish());

        let mut batch_strategy = FixedKSlack::new(50u64);
        let batch = execute(
            &evs,
            &mut batch_strategy,
            &query(),
            &ExecOptions::sequential(),
        )
        .unwrap();
        assert_eq!(online_results, batch.results);
        assert_eq!(online.results_emitted() as usize, batch.results.len());
    }

    #[test]
    fn results_arrive_incrementally_not_only_at_finish() {
        let evs = events(500);
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(50u64)), &query()).unwrap();
        let mut early = 0;
        for e in &evs {
            early += online.push(e.clone()).len();
        }
        let tail = online.finish().len();
        assert!(early > 0, "no incremental results");
        assert!(early > tail, "most results should arrive before flush");
    }

    #[test]
    fn introspection_reflects_progress() {
        let mut online =
            OnlineQuery::new(Box::new(AqKSlack::for_completeness(0.9)), &query()).unwrap();
        assert_eq!(online.clock(), None);
        assert_eq!(online.buffered(), 0);
        for e in events(300) {
            online.push(e);
        }
        assert!(online.clock().is_some());
        assert!(online.strategy_name().contains("aq"));
        assert!(online.mean_latency() >= 0.0);
        online.finish();
        assert_eq!(online.buffered(), 0);
        let ws = online.window_stats();
        assert_eq!(ws.accepted + ws.late_dropped, 300);
    }

    #[test]
    fn push_after_finish_is_noop() {
        let mut online = OnlineQuery::new(Box::new(FixedKSlack::new(10u64)), &query()).unwrap();
        online.push(Event::new(5u64, 0, Row::new([Value::Float(1.0)])));
        let first = online.finish();
        assert!(!first.is_empty());
        assert!(online.finish().is_empty());
        assert!(online
            .push(Event::new(999u64, 1, Row::new([Value::Float(1.0)])))
            .is_empty());
    }

    #[test]
    fn invalid_query_is_rejected() {
        let bad = QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None);
        assert!(OnlineQuery::new(Box::new(FixedKSlack::new(1u64)), &bad).is_err());
    }
}
