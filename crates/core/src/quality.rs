//! Quality targets and their translation to buffering requirements.
//!
//! The user states *what result quality they need*; the system derives *how
//! much disorder tolerance that requires*:
//!
//! * [`QualityTarget::Completeness`] — "each window's first result must
//!   reflect at least fraction `q` of its tuples." Directly a delay-CDF
//!   requirement: buffer with slack `K ≥ F⁻¹(q)`.
//! * [`QualityTarget::MaxRelError`] — "the aggregate's relative error must
//!   not exceed `ε`." Translated to an *effective completeness* via an
//!   online error-sensitivity model: for mean-like aggregates, losing a
//!   random fraction `m` of tuples perturbs the result by roughly
//!   `s·m·cv/√(n·m)`-ish in expectation; we use the conservative first-order
//!   bound `rel_error ≤ sensitivity · m`, with the sensitivity estimated
//!   from the payload's observed coefficient of variation. This is the
//!   mechanism that lets error-tolerant queries run at *lower latency* than
//!   an equivalent completeness target (experiment R-F9).

use quill_metrics::StreamingStats;
use serde::{Deserialize, Serialize};

/// The user-facing quality specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityTarget {
    /// Minimum fraction of each window's tuples that must be reflected in
    /// its first emitted result (`0 < q <= 1`).
    Completeness {
        /// The completeness level.
        q: f64,
    },
    /// Maximum tolerated relative error of the aggregate computed over the
    /// numeric field at `field` (`epsilon > 0`).
    MaxRelError {
        /// Error bound (e.g. 0.01 for 1 %).
        epsilon: f64,
        /// Row index of the aggregated numeric field (used to estimate
        /// error sensitivity online).
        field: usize,
    },
}

impl QualityTarget {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            QualityTarget::Completeness { q } => {
                if !(q > 0.0 && q <= 1.0) {
                    return Err(format!("completeness q={q} outside (0, 1]"));
                }
            }
            QualityTarget::MaxRelError { epsilon, .. } => {
                if !(epsilon > 0.0 && epsilon.is_finite()) {
                    return Err(format!("epsilon={epsilon} must be positive and finite"));
                }
            }
        }
        Ok(())
    }

    /// The completeness level this target requires, given the current
    /// sensitivity estimate (ignored for direct completeness targets).
    pub fn required_completeness(&self, sensitivity: &SensitivityModel) -> f64 {
        match *self {
            QualityTarget::Completeness { q } => q.clamp(0.0, 1.0),
            QualityTarget::MaxRelError { epsilon, .. } => {
                // rel_error ≈ sensitivity · missing_fraction
                //   → missing_fraction allowed = epsilon / sensitivity.
                let s = sensitivity.factor();
                let allowed_missing = if s <= 0.0 { 1.0 } else { epsilon / s };
                (1.0 - allowed_missing).clamp(0.0, 1.0)
            }
        }
    }
}

/// Online estimate of how strongly missing tuples perturb the aggregate:
/// the payload's coefficient of variation (σ/|μ|), floored to keep the
/// translation conservative for near-constant payloads.
#[derive(Debug, Clone)]
pub struct SensitivityModel {
    stats: StreamingStats,
    floor: f64,
}

impl SensitivityModel {
    /// Default floor of 0.1: even a constant payload is treated as if
    /// missing 10·ε of the tuples could produce error ε (count-style
    /// aggregates lose exactly the missing fraction).
    pub fn new() -> SensitivityModel {
        SensitivityModel {
            stats: StreamingStats::new(),
            floor: 0.1,
        }
    }

    /// Custom floor.
    pub fn with_floor(floor: f64) -> SensitivityModel {
        SensitivityModel {
            stats: StreamingStats::new(),
            floor: floor.max(0.0),
        }
    }

    /// Observe one payload value.
    pub fn observe(&mut self, v: f64) {
        if v.is_finite() {
            self.stats.push(v);
        }
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The sensitivity factor: `max(cv, floor, 1.0)` — missing a fraction
    /// `m` of tuples is assumed to move sum/count-like aggregates by up to
    /// `m` itself (factor 1) and high-dispersion aggregates by `cv·m`.
    pub fn factor(&self) -> f64 {
        if self.stats.count() < 2 {
            return 1.0f64.max(self.floor);
        }
        let mean = self.stats.mean().abs();
        let cv = if mean < 1e-12 {
            f64::INFINITY
        } else {
            self.stats.stddev() / mean
        };
        cv.max(self.floor).max(1.0)
    }
}

impl Default for SensitivityModel {
    fn default() -> Self {
        SensitivityModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(QualityTarget::Completeness { q: 0.95 }.validate().is_ok());
        assert!(QualityTarget::Completeness { q: 0.0 }.validate().is_err());
        assert!(QualityTarget::Completeness { q: 1.2 }.validate().is_err());
        assert!(QualityTarget::MaxRelError {
            epsilon: 0.01,
            field: 0
        }
        .validate()
        .is_ok());
        assert!(QualityTarget::MaxRelError {
            epsilon: 0.0,
            field: 0
        }
        .validate()
        .is_err());
        assert!(QualityTarget::MaxRelError {
            epsilon: f64::NAN,
            field: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn completeness_target_is_identity() {
        let t = QualityTarget::Completeness { q: 0.97 };
        assert_eq!(t.required_completeness(&SensitivityModel::new()), 0.97);
    }

    #[test]
    fn error_target_relaxes_with_low_dispersion() {
        // Near-constant payload: sensitivity floors at 1.0, so ε=0.05 allows
        // 5 % missing tuples.
        let mut s = SensitivityModel::new();
        for _ in 0..100 {
            s.observe(10.0);
        }
        let t = QualityTarget::MaxRelError {
            epsilon: 0.05,
            field: 0,
        };
        let req = t.required_completeness(&s);
        assert!((req - 0.95).abs() < 1e-9, "req={req}");
    }

    #[test]
    fn error_target_tightens_with_high_dispersion() {
        let mut s = SensitivityModel::new();
        // Alternate 0 / 20: mean 10, stddev 10 → cv = 1; add spread.
        for i in 0..1000 {
            s.observe(if i % 10 == 0 { 500.0 } else { 1.0 });
        }
        assert!(s.factor() > 2.0, "factor={}", s.factor());
        let t = QualityTarget::MaxRelError {
            epsilon: 0.05,
            field: 0,
        };
        let relaxed = QualityTarget::MaxRelError {
            epsilon: 0.05,
            field: 0,
        }
        .required_completeness(&SensitivityModel::new());
        let tightened = t.required_completeness(&s);
        assert!(tightened > relaxed, "{tightened} <= {relaxed}");
    }

    #[test]
    fn error_target_never_exceeds_full_completeness() {
        let mut s = SensitivityModel::new();
        for i in 0..100 {
            s.observe(i as f64 * 1000.0);
        }
        let t = QualityTarget::MaxRelError {
            epsilon: 1e-9,
            field: 0,
        };
        assert!(t.required_completeness(&s) <= 1.0);
    }

    #[test]
    fn sensitivity_before_data_defaults_to_one() {
        let s = SensitivityModel::new();
        assert_eq!(s.factor(), 1.0);
    }

    #[test]
    fn sensitivity_ignores_non_finite() {
        let mut s = SensitivityModel::new();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        assert_eq!(s.count(), 0);
    }
}
