//! Per-source punctuation baseline (Srivastava & Widom-style heartbeats).
//!
//! When the stream multiplexes several FIFO sources, each source's latest
//! timestamp is an implicit heartbeat: no *future* event from that source
//! can be older. The combined low-watermark `min over sources of (latest
//! ts)` then bounds every future event — **if** sources really are
//! internally ordered. With per-event transport delays (our workloads),
//! each source is itself slightly disordered, so punctuation alone
//! under-buffers; the strategy takes an optional per-source slack to
//! compensate. It is the classic alternative to K-slack and a useful
//! comparison point: no delay estimation at all, but it needs source
//! cooperation and degrades when any single source stalls.

use crate::buffer::{BufferStats, SlackBuffer};
use crate::strategy::DisorderControl;
use quill_engine::prelude::{Event, Key, StreamElement, TimeDelta, Timestamp};
use std::collections::HashMap;

/// Disorder control driven by per-source progress instead of delay
/// statistics.
pub struct PunctuatedBuffer {
    source_field: usize,
    /// Extra slack subtracted from the combined watermark (compensates for
    /// intra-source disorder).
    source_slack: TimeDelta,
    /// Hold back until this many distinct sources have been seen (else one
    /// early source would define the watermark alone).
    expected_sources: usize,
    per_source: HashMap<Key, Timestamp>,
    buf: SlackBuffer,
    clock: Timestamp,
    saw_event: bool,
}

impl PunctuatedBuffer {
    /// Build with the row index carrying the source id.
    pub fn new(source_field: usize, expected_sources: usize) -> PunctuatedBuffer {
        PunctuatedBuffer {
            source_field,
            source_slack: TimeDelta::ZERO,
            expected_sources: expected_sources.max(1),
            per_source: HashMap::new(),
            buf: SlackBuffer::new(TimeDelta::MAX),
            clock: Timestamp::MIN,
            saw_event: false,
        }
    }

    /// Add per-source slack (for sources that are themselves disordered).
    pub fn with_source_slack(mut self, slack: impl Into<TimeDelta>) -> PunctuatedBuffer {
        self.source_slack = slack.into();
        self
    }

    /// Distinct sources observed so far.
    pub fn sources_seen(&self) -> usize {
        self.per_source.len()
    }

    fn combined_watermark(&self) -> Timestamp {
        if self.per_source.len() < self.expected_sources {
            return Timestamp::MIN;
        }
        self.per_source
            .values()
            .copied()
            .min()
            .unwrap_or(Timestamp::MIN)
            .saturating_sub(self.source_slack)
    }
}

impl DisorderControl for PunctuatedBuffer {
    fn instrument(&mut self, telemetry: &quill_telemetry::Registry) {
        self.buf.instrument(telemetry);
    }

    fn attach_trace(&mut self, trace: &quill_telemetry::FlightRecorder) {
        self.buf.attach_trace(trace);
        crate::strategy::record_initial_k(trace, self.buf.k().raw());
    }

    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }

    fn name(&self) -> String {
        if self.source_slack == TimeDelta::ZERO {
            "punct".into()
        } else {
            format!("punct(slack={})", self.source_slack.raw())
        }
    }

    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        let source = Key(e.row.get(self.source_field).clone());
        let entry = self.per_source.entry(source).or_insert(e.ts);
        *entry = (*entry).max(e.ts);
        self.clock = if self.saw_event {
            self.clock.max(e.ts)
        } else {
            e.ts
        };
        self.saw_event = true;
        // Express the desired watermark as an equivalent K for the slack
        // buffer: releasing up to `wm` is releasing up to `clock - K` with
        // K = clock - wm. Watermark monotonicity is enforced by the buffer.
        let wm = self.combined_watermark();
        let k = self.clock.delta_since(wm);
        self.buf.set_k(k);
        self.buf.insert(e, out);
    }

    fn on_heartbeat(&mut self, source: &Key, ts: Timestamp, out: &mut Vec<StreamElement>) {
        let entry = self.per_source.entry(source.clone()).or_insert(ts);
        *entry = (*entry).max(ts);
        // The clock (max *event* timestamp) does not advance: a heartbeat
        // carries progress, not data. The combined watermark may advance,
        // which shrinks K and can release buffered events. When a heartbeat
        // runs ahead of the clock, `delta_since` saturates at zero and the
        // buffer conservatively releases up to the clock only.
        let wm = self.combined_watermark();
        let k = self.clock.delta_since(wm);
        self.buf.set_k(k);
        self.buf.drain_ready(out);
    }

    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }

    fn current_k(&self) -> TimeDelta {
        self.buf.k()
    }

    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }

    fn split_for_shard_staging(&mut self) -> bool {
        // Per-source progress and the combined watermark are derived from
        // event fields alone; the slack buffer is only the release gate.
        self.buf.set_control_only();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::{Row, Value};

    fn ev(ts: u64, seq: u64, source: i64) -> Event {
        Event::new(
            ts,
            seq,
            Row::new([Value::Int(source), Value::Float(ts as f64)]),
        )
    }

    fn released_ts(out: &[StreamElement]) -> Vec<u64> {
        out.iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.ts.raw())
            .collect()
    }

    #[test]
    fn holds_until_all_sources_report() {
        let mut s = PunctuatedBuffer::new(0, 2);
        let mut out = Vec::new();
        s.on_event(ev(100, 0, 1), &mut out);
        s.on_event(ev(200, 1, 1), &mut out);
        // Only source 1 seen: nothing released.
        assert!(released_ts(&out).is_empty());
        assert_eq!(s.sources_seen(), 1);
        s.on_event(ev(150, 2, 2), &mut out);
        // Now wm = min(200, 150) = 150 → releases ts <= 150.
        assert_eq!(released_ts(&out), vec![100, 150]);
    }

    #[test]
    fn watermark_follows_slowest_source() {
        let mut s = PunctuatedBuffer::new(0, 2);
        let mut out = Vec::new();
        s.on_event(ev(10, 0, 1), &mut out);
        s.on_event(ev(10, 1, 2), &mut out);
        s.on_event(ev(1000, 2, 1), &mut out); // source 1 races ahead
        out.clear();
        s.on_event(ev(20, 3, 2), &mut out);
        // wm = min(1000, 20) = 20: ts=20 released, ts=1000 held.
        assert_eq!(released_ts(&out), vec![20]);
    }

    #[test]
    fn fifo_sources_are_lossless() {
        // Perfectly FIFO interleaved sources: punctuation is exact.
        let mut s = PunctuatedBuffer::new(0, 2);
        let mut out = Vec::new();
        let mut seq = 0;
        for t in 0..100u64 {
            for src in [1i64, 2] {
                s.on_event(ev(t * 10 + src as u64, seq, src), &mut out);
                seq += 1;
            }
        }
        s.finish(&mut out);
        assert_eq!(s.buffer_stats().late_passed, 0);
        let ts = released_ts(&out);
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn intra_source_disorder_causes_late_passes_without_slack() {
        let mut s = PunctuatedBuffer::new(0, 1);
        let mut out = Vec::new();
        s.on_event(ev(100, 0, 1), &mut out); // wm jumps to 100
        s.on_event(ev(50, 1, 1), &mut out); // behind own source's watermark
        assert_eq!(s.buffer_stats().late_passed, 1);
    }

    #[test]
    fn heartbeats_release_without_data() {
        let mut s = PunctuatedBuffer::new(0, 2);
        let mut out = Vec::new();
        s.on_event(ev(100, 0, 1), &mut out);
        s.on_event(ev(200, 1, 1), &mut out);
        assert!(released_ts(&out).is_empty(), "source 2 unseen");
        // A heartbeat from source 2 vouches for its progress: wm = min(200,
        // 150) = 150 without any event from it, releasing ts <= 150.
        s.on_heartbeat(&Key(Value::Int(2)), Timestamp(150), &mut out);
        assert_eq!(released_ts(&out), vec![100]);
        assert_eq!(s.sources_seen(), 2);
        // A heartbeat ahead of the clock saturates at the clock.
        s.on_heartbeat(&Key(Value::Int(2)), Timestamp(10_000), &mut out);
        s.on_heartbeat(&Key(Value::Int(1)), Timestamp(10_000), &mut out);
        assert_eq!(released_ts(&out), vec![100, 200]);
    }

    #[test]
    fn source_slack_compensates_intra_source_disorder() {
        let mut s = PunctuatedBuffer::new(0, 1).with_source_slack(60u64);
        let mut out = Vec::new();
        s.on_event(ev(100, 0, 1), &mut out); // wm = 100 - 60 = 40
        s.on_event(ev(50, 1, 1), &mut out); // 50 >= 40 → buffered fine
        assert_eq!(s.buffer_stats().late_passed, 0);
        assert!(s.name().contains("60"));
    }
}
