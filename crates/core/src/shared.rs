//! Shared execution of multiple continuous queries over one buffered stream.
//!
//! In practice many continuous queries subscribe to the same stream; the
//! ordering buffer is paid once and its watermarks fan out to every query's
//! window operator. The slack must then satisfy the *strictest* quality
//! target among the subscribers — [`strictest_completeness`] picks it — and
//! looser queries simply enjoy surplus quality. This mirrors the
//! multi-query sharing angle of the original system demo.

use crate::runner::QuerySpec;
use crate::strategy::DisorderControl;
use quill_engine::error::Result;
use quill_engine::event::{ClockTracker, Event, StreamElement};
use quill_engine::operator::{LatePolicy, Operator, WindowAggregateOp, WindowResult};
use quill_metrics::quality_eval::{oracle_results, score, QualityReport};
use quill_metrics::{LatencyRecorder, Summary};

/// Per-query measurement of a shared run.
#[derive(Debug, Clone)]
pub struct SharedQueryOutput {
    /// Index into the input query slice.
    pub query_index: usize,
    /// Emitted results in order.
    pub results: Vec<WindowResult>,
    /// Per-result latency summary.
    pub latency: Summary,
    /// Quality vs. this query's own oracle.
    pub quality: QualityReport,
}

/// Outcome of a shared multi-query run.
#[derive(Debug, Clone)]
pub struct SharedRunOutput {
    /// Strategy name.
    pub strategy: String,
    /// One entry per input query.
    pub per_query: Vec<SharedQueryOutput>,
    /// Wall-clock time for the whole shared run, microseconds.
    pub wall_micros: u128,
}

/// The completeness target a shared buffer must honour: the maximum over
/// subscribers (strictest wins). Returns `None` for an empty slice.
pub fn strictest_completeness(targets: &[f64]) -> Option<f64> {
    targets.iter().copied().fold(None, |acc, t| {
        Some(match acc {
            None => t,
            Some(a) => a.max(t),
        })
    })
}

/// Run several queries over one stream sharing a single disorder-control
/// strategy (one buffer, one watermark sequence, N window operators).
///
/// # Errors
/// Propagates invalid query specifications.
pub fn run_shared(
    events: &[Event],
    strategy: &mut dyn DisorderControl,
    queries: &[QuerySpec],
) -> Result<SharedRunOutput> {
    let mut ops: Vec<WindowAggregateOp> = queries
        .iter()
        .map(|q| {
            WindowAggregateOp::new(
                q.window,
                q.aggregates.clone(),
                q.key_field,
                LatePolicy::Drop,
            )
        })
        .collect::<Result<_>>()?;
    let mut latencies: Vec<LatencyRecorder> = queries
        .iter()
        .map(|_| LatencyRecorder::with_samples())
        .collect();
    let mut results: Vec<Vec<WindowResult>> = queries.iter().map(|_| Vec::new()).collect();
    let mut clock = ClockTracker::new();

    let start = std::time::Instant::now();
    let mut staged = Vec::new();
    let route = |staged: &mut Vec<StreamElement>,
                 ops: &mut [WindowAggregateOp],
                 latencies: &mut [LatencyRecorder],
                 results: &mut [Vec<WindowResult>],
                 now: quill_engine::time::Timestamp| {
        for el in staged.drain(..) {
            for ((op, lat), res) in ops
                .iter_mut()
                .zip(latencies.iter_mut())
                .zip(results.iter_mut())
            {
                op.process(el.clone(), &mut |o| {
                    if let StreamElement::Event(out_ev) = o {
                        if let Some(r) = WindowResult::from_row(&out_ev.row) {
                            lat.record(now.delta_since(r.window.end));
                            res.push(r);
                        }
                    }
                });
            }
        }
    };
    for e in events {
        clock.observe(e.ts);
        let now = clock.clock().expect("observed event");
        staged.clear();
        strategy.on_event(e.clone(), &mut staged);
        route(&mut staged, &mut ops, &mut latencies, &mut results, now);
    }
    staged.clear();
    strategy.finish(&mut staged);
    let now = clock.clock().unwrap_or_default();
    route(&mut staged, &mut ops, &mut latencies, &mut results, now);
    let wall_micros = start.elapsed().as_micros();

    let per_query = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let oracle = oracle_results(events, q.window, &q.aggregates, q.key_field);
            SharedQueryOutput {
                query_index: i,
                latency: latencies[i].summary(),
                quality: score(&results[i], &oracle),
                results: std::mem::take(&mut results[i]),
            }
        })
        .collect();

    Ok(SharedRunOutput {
        strategy: strategy.name(),
        per_query,
        wall_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aq::AqKSlack;
    use crate::runner::run_query;
    use crate::strategy::FixedKSlack;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::prelude::{Row, Value, WindowSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn events(n: u64, seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|i| (i * 10 + rng.gen_range(0..200), i * 10))
            .collect();
        arrivals.sort();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(s, (_, ts))| Event::new(ts, s as u64, Row::new([Value::Float(1.0)])))
            .collect()
    }

    fn queries() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new(
                WindowSpec::tumbling(500u64),
                vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
                None,
            ),
            QuerySpec::new(
                WindowSpec::sliding(1_000u64, 200u64),
                vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
                None,
            ),
        ]
    }

    #[test]
    fn shared_run_matches_individual_runs() {
        let evs = events(3_000, 1);
        let qs = queries();
        let mut shared_strategy = FixedKSlack::new(150u64);
        let shared = run_shared(&evs, &mut shared_strategy, &qs).unwrap();
        for (i, q) in qs.iter().enumerate() {
            let mut solo_strategy = FixedKSlack::new(150u64);
            let solo = run_query(&evs, &mut solo_strategy, q).unwrap();
            assert_eq!(shared.per_query[i].results, solo.results, "query {i}");
            assert_eq!(
                shared.per_query[i].quality.mean_completeness,
                solo.quality.mean_completeness
            );
        }
    }

    #[test]
    fn strictest_target_selection() {
        assert_eq!(strictest_completeness(&[]), None);
        assert_eq!(strictest_completeness(&[0.9, 0.99, 0.95]), Some(0.99));
    }

    #[test]
    fn one_buffer_serves_all_subscribers_at_the_strictest_target() {
        let evs = events(20_000, 2);
        let qs = queries();
        let q = strictest_completeness(&[0.9, 0.99]).unwrap();
        let mut strategy = AqKSlack::for_completeness(q);
        let shared = run_shared(&evs, &mut strategy, &qs).unwrap();
        for out in &shared.per_query {
            assert!(
                out.quality.mean_completeness >= 0.9,
                "query {} under-served: {}",
                out.query_index,
                out.quality.mean_completeness
            );
        }
        assert!(shared.wall_micros > 0);
        assert!(shared.strategy.contains("0.99"));
    }

    #[test]
    fn empty_query_set_is_fine() {
        let evs = events(100, 3);
        let mut s = FixedKSlack::new(10u64);
        let shared = run_shared(&evs, &mut s, &[]).unwrap();
        assert!(shared.per_query.is_empty());
    }

    #[test]
    fn invalid_query_in_set_is_rejected() {
        let evs = events(10, 4);
        let mut s = FixedKSlack::new(10u64);
        let bad = vec![QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None)];
        assert!(run_shared(&evs, &mut s, &bad).is_err());
    }
}
