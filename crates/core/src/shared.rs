//! Shared execution of multiple continuous queries over one buffered stream.
//!
//! In practice many continuous queries subscribe to the same stream; the
//! ordering buffer is paid once and its watermarks fan out to every query's
//! window operator. The slack must then satisfy the *strictest* quality
//! target among the subscribers — [`strictest_completeness`] picks it — and
//! looser queries simply enjoy surplus quality. This mirrors the
//! multi-query sharing angle of the original system demo.

use crate::plan::Diagnostic;
use crate::runner::{stage_strategy, vet_plan, ExecOptions, QuerySpec};
use crate::session::MultiQueryCore;
use crate::strategy::DisorderControl;
use quill_engine::error::Result;
use quill_engine::event::{Event, StreamElement};
use quill_engine::operator::{LatePolicy, WindowAggregateOp, WindowResult};
use quill_engine::parallel::run_keyed_parallel_traced;
use quill_engine::time::Timestamp;
use quill_metrics::quality_eval::{oracle_results, score, QualityReport};
use quill_metrics::{LatencyRecorder, Summary};
use quill_telemetry::trace::FlightRecorder;
use quill_telemetry::{Snapshot, Stage};

/// Per-query measurement of a shared run.
#[derive(Debug, Clone)]
pub struct SharedQueryOutput {
    /// Index into the input query slice.
    pub query_index: usize,
    /// Emitted results in order.
    pub results: Vec<WindowResult>,
    /// Per-result latency summary.
    pub latency: Summary,
    /// Quality vs. this query's own oracle.
    pub quality: QualityReport,
}

/// Outcome of a shared multi-query run.
#[derive(Debug, Clone)]
pub struct SharedRunOutput {
    /// Strategy name.
    pub strategy: String,
    /// One entry per input query.
    pub per_query: Vec<SharedQueryOutput>,
    /// Wall-clock time for the whole shared run, microseconds.
    pub wall_micros: u128,
    /// Telemetry snapshots collected during the run (empty when telemetry is
    /// disabled).
    pub snapshots: Vec<Snapshot>,
    /// Advisory and warn-level plan diagnostics across all queries
    /// (deduplicated); deny-level findings abort [`execute_shared`] instead.
    pub plan: Vec<Diagnostic>,
}

/// The completeness target a shared buffer must honour: the maximum over
/// subscribers (strictest wins). Returns `None` for an empty slice.
pub fn strictest_completeness(targets: &[f64]) -> Option<f64> {
    targets.iter().copied().fold(None, |acc, t| {
        Some(match acc {
            None => t,
            Some(a) => a.max(t),
        })
    })
}

/// Run several queries over one stream sharing a single disorder-control
/// strategy (one buffer, one watermark sequence, N window operators), per
/// `opts`: each query's windowing runs sequentially or on the keyed-parallel
/// executor, and an enabled telemetry registry observes the shared buffer
/// once rather than once per query.
///
/// Note that with `opts.parallel` set, the per-shard executor counters
/// accumulate across queries (each query fans the staged stream out again),
/// so `quill.shard.*.events` totals `queries × events` rather than `events`.
///
/// # Errors
/// Propagates invalid query specifications and executor failures.
pub fn execute_shared(
    events: &[Event],
    strategy: &mut dyn DisorderControl,
    queries: &[QuerySpec],
    opts: &ExecOptions,
) -> Result<SharedRunOutput> {
    // Validate every query up front so per-shard factories below can't fail.
    for q in queries {
        WindowAggregateOp::new(
            q.window,
            q.aggregates.clone(),
            q.key_field,
            LatePolicy::Drop,
        )?;
    }
    // Static plan analysis per query: any deny-level finding refuses the
    // whole shared run before the buffer sees an event.
    let mut plan: Vec<Diagnostic> = Vec::new();
    for q in queries {
        for d in vet_plan(q, strategy, opts)? {
            if !plan.contains(&d) {
                plan.push(d);
            }
        }
    }
    let results_count = opts.telemetry.counter("quill.run.results");

    let start = std::time::Instant::now();
    let mut staged = stage_strategy(events, strategy, opts);

    // Per-query (results, latency summary), in query order.
    let all_results: Vec<(Vec<WindowResult>, Summary)> = match opts.parallel {
        None => {
            // The sequential path replays the staged stream through the same
            // multi-query fan-out core a resident `crate::session::Session`
            // runs on: the `now` supplied per element is the recorded clock
            // at that watermark's release, so latency stamping is identical
            // to interleaved execution.
            let mut core = MultiQueryCore::new(&opts.telemetry);
            core.attach_spans(&opts.spans);
            core.set_window_state(opts.window_state);
            for q in queries {
                core.register(
                    q,
                    opts.required_completeness,
                    usize::MAX,
                    None,
                    LatencyRecorder::with_samples(),
                )?;
            }
            let mut wm_at = 0usize;
            for el in std::mem::take(&mut staged.elements) {
                let now = match &el {
                    StreamElement::Watermark(_) => {
                        let (_, clock) = staged.wm_clock[wm_at];
                        wm_at += 1;
                        clock
                    }
                    StreamElement::Flush => staged.final_clock,
                    // Events never emit results under `LatePolicy::Drop`, so
                    // their `now` is irrelevant.
                    StreamElement::Event(_) => Timestamp::MIN,
                };
                core.process_element(el, now);
            }
            core.into_outputs()
        }
        Some(config) => {
            let mut outs = Vec::with_capacity(queries.len());
            for (qi, q) in queries.iter().enumerate() {
                let key_field = q.key_field.unwrap_or(usize::MAX);
                let (out, _ops) = run_keyed_parallel_traced(
                    staged.elements.clone(),
                    key_field,
                    config,
                    &opts.telemetry,
                    &FlightRecorder::disabled(),
                    &opts.spans,
                    |shard| {
                        let mut op = WindowAggregateOp::new(
                            q.window,
                            q.aggregates.clone(),
                            q.key_field,
                            LatePolicy::Drop,
                        )
                        // quill-lint: allow(no-panic, reason = "the identical WindowAggregateOp::new call was validated at the top of execute_shared()")
                        .expect("query validated above")
                        .with_window_state(opts.window_state);
                        op.attach_spans(&opts.spans, shard as u32);
                        op
                    },
                )?;
                let results: Vec<WindowResult> = out
                    .iter()
                    .filter_map(|el| el.as_event())
                    .filter_map(|e| WindowResult::from_row(&e.row))
                    .collect();
                results_count.add(results.len() as u64);
                let record_deliver = opts.spans.is_enabled();
                let mut latency = LatencyRecorder::with_samples();
                for r in &results {
                    let emitted_at = staged.emission_clock(r.window.end);
                    latency.record(emitted_at.delta_since(r.window.end));
                    if record_deliver {
                        // Query-tagged delivery span so shared-run timelines
                        // attribute each result to its subscriber.
                        opts.spans.record_for_query(
                            Stage::Deliver,
                            r.window.end.raw(),
                            emitted_at.raw(),
                            0,
                            qi as u64,
                        );
                    }
                }
                outs.push((results, latency.summary()));
            }
            outs
        }
    };
    let wall_micros = start.elapsed().as_micros();

    let per_query = queries
        .iter()
        .zip(all_results)
        .enumerate()
        .map(|(i, (q, (results, latency)))| {
            let oracle = oracle_results(events, q.window, &q.aggregates, q.key_field);
            SharedQueryOutput {
                query_index: i,
                latency,
                quality: score(&results, &oracle),
                results,
            }
        })
        .collect();
    // Force the end-of-run snapshot so it covers the per-query result
    // instruments recorded after staging.
    if opts.telemetry.is_enabled() {
        staged.reporter.force();
    }
    let snapshots = staged.reporter.finish();

    Ok(SharedRunOutput {
        strategy: strategy.name(),
        per_query,
        wall_micros,
        snapshots,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aq::AqKSlack;
    use crate::runner::execute;
    use crate::strategy::FixedKSlack;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::parallel::ParallelConfig;
    use quill_engine::prelude::{Row, Value, WindowSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn events(n: u64, seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|i| (i * 10 + rng.gen_range(0..200), i * 10))
            .collect();
        arrivals.sort();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(s, (_, ts))| Event::new(ts, s as u64, Row::new([Value::Float(1.0)])))
            .collect()
    }

    fn queries() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new(
                WindowSpec::tumbling(500u64),
                vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
                None,
            ),
            QuerySpec::new(
                WindowSpec::sliding(1_000u64, 200u64),
                vec![AggregateSpec::new(AggregateKind::Count, 0, "n")],
                None,
            ),
        ]
    }

    #[test]
    fn shared_run_matches_individual_runs() {
        let evs = events(3_000, 1);
        let qs = queries();
        let mut shared_strategy = FixedKSlack::new(150u64);
        let shared =
            execute_shared(&evs, &mut shared_strategy, &qs, &ExecOptions::sequential()).unwrap();
        for (i, q) in qs.iter().enumerate() {
            let mut solo_strategy = FixedKSlack::new(150u64);
            let solo = execute(&evs, &mut solo_strategy, q, &ExecOptions::sequential()).unwrap();
            assert_eq!(shared.per_query[i].results, solo.results, "query {i}");
            assert_eq!(
                shared.per_query[i].quality.mean_completeness,
                solo.quality.mean_completeness
            );
            assert!(
                (shared.per_query[i].latency.mean - solo.latency.mean).abs() < 1e-6,
                "query {i} latency {} vs {}",
                shared.per_query[i].latency.mean,
                solo.latency.mean
            );
        }
    }

    #[test]
    fn shared_parallel_matches_shared_sequential() {
        let evs = events(2_000, 5);
        let qs = queries();
        let mut s_seq = FixedKSlack::new(150u64);
        let mut s_par = FixedKSlack::new(150u64);
        let seq = execute_shared(&evs, &mut s_seq, &qs, &ExecOptions::sequential()).unwrap();
        let par = execute_shared(
            &evs,
            &mut s_par,
            &qs,
            &ExecOptions::parallel(ParallelConfig::new(2).with_batch_size(16)),
        )
        .unwrap();
        for i in 0..qs.len() {
            assert_eq!(
                seq.per_query[i].quality.mean_completeness,
                par.per_query[i].quality.mean_completeness
            );
            assert_eq!(
                seq.per_query[i].results.len(),
                par.per_query[i].results.len()
            );
        }
    }

    #[test]
    fn strictest_target_selection() {
        assert_eq!(strictest_completeness(&[]), None);
        assert_eq!(strictest_completeness(&[0.9, 0.99, 0.95]), Some(0.99));
    }

    #[test]
    fn one_buffer_serves_all_subscribers_at_the_strictest_target() {
        let evs = events(20_000, 2);
        let qs = queries();
        let q = strictest_completeness(&[0.9, 0.99]).unwrap();
        let mut strategy = AqKSlack::for_completeness(q);
        let shared = execute_shared(&evs, &mut strategy, &qs, &ExecOptions::sequential()).unwrap();
        for out in &shared.per_query {
            assert!(
                out.quality.mean_completeness >= 0.9,
                "query {} under-served: {}",
                out.query_index,
                out.quality.mean_completeness
            );
        }
        assert!(shared.wall_micros > 0);
        assert!(shared.strategy.contains("0.99"));
    }

    #[test]
    fn shared_telemetry_counts_the_buffer_once() {
        let evs = events(1_000, 6);
        let qs = queries();
        let telemetry = quill_telemetry::Registry::new();
        let mut strategy = FixedKSlack::new(150u64);
        let shared = execute_shared(
            &evs,
            &mut strategy,
            &qs,
            &ExecOptions::sequential().with_telemetry(&telemetry),
        )
        .unwrap();
        let last = shared.snapshots.last().expect("final snapshot");
        assert_eq!(last.counter("quill.run.events"), 1_000);
        assert_eq!(
            last.counter("quill.buffer.inserted") + last.counter("quill.buffer.late_passed"),
            1_000
        );
        let total_results: usize = shared.per_query.iter().map(|q| q.results.len()).sum();
        assert_eq!(last.counter("quill.run.results"), total_results as u64);
    }

    #[test]
    fn empty_query_set_is_fine() {
        let evs = events(100, 3);
        let mut s = FixedKSlack::new(10u64);
        let shared = execute_shared(&evs, &mut s, &[], &ExecOptions::sequential()).unwrap();
        assert!(shared.per_query.is_empty());
    }

    #[test]
    fn invalid_query_in_set_is_rejected() {
        let evs = events(10, 4);
        let mut s = FixedKSlack::new(10u64);
        let bad = vec![QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None)];
        assert!(execute_shared(&evs, &mut s, &bad, &ExecOptions::sequential()).is_err());
    }
}
