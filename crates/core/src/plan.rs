//! Static query-plan analysis: catch infeasible or wasteful configurations
//! *before* the first event is processed.
//!
//! [`analyze_plan`] inspects the query shape ([`QuerySpec`]), the statically
//! known strategy behaviour ([`StrategyKind`]) and the execution options
//! ([`ExecOptions`]) and returns structured [`Diagnostic`]s:
//!
//! * **Deny** — the plan cannot deliver what was asked (e.g. a completeness
//!   target of 1.0 under an unbounded delay distribution, or a fixed slack
//!   below a declared delay bound). [`crate::runner::execute`] refuses such
//!   plans with [`quill_engine::error::EngineError::PlanRejected`] before
//!   any event is buffered.
//! * **Warn** — the plan runs but wastes resources or silently cannot do
//!   what the options suggest (snapshots without telemetry, more shards
//!   than keys, a pane-ineligible slide).
//! * **Advice** — a better configuration exists.
//!
//! Delay knowledge is opt-in: the analyzer only reasons about feasibility
//! when the caller declares a [`DelayProfile`] via
//! [`ExecOptions::with_delay_profile`]. Without it, quality-feasibility
//! checks stay silent (the delay distribution is a runtime observation).

use crate::quality::QualityTarget;
use crate::runner::{ExecOptions, QuerySpec};
use quill_engine::window::WindowSpec;
use std::fmt;

/// How severe a plan finding is. Only [`Severity::Deny`] aborts execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A better configuration exists.
    Advice,
    /// The plan runs but part of the configuration is ineffective or costly.
    Warn,
    /// The plan cannot meet its stated requirements; execution is refused.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Advice => write!(f, "advice"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// One plan finding: which check fired, how severe, what and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Check identifier, dotted (`plan.quality.infeasible`, ...).
    pub rule: String,
    /// Severity level.
    pub severity: Severity,
    /// What is wrong with the plan.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    fn new(
        rule: &str,
        severity: Severity,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity,
            message: message.into(),
            help: help.into(),
        }
    }

    /// Render as one JSON-lines object (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_jsonl_line(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"help\":\"{}\"}}",
            esc(&self.rule),
            self.severity,
            esc(&self.message),
            esc(&self.help),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} (help: {})",
            self.severity, self.rule, self.message, self.help
        )
    }
}

/// Extract the string value of `"key":"..."` from one JSONL object,
/// honouring backslash escapes.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(c);
                    }
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Parse plan diagnostics back from JSON lines (round-trip of
/// [`Diagnostic::to_jsonl_line`]); used by `quill-inspect`.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse_plan_jsonl(text: &str) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let field = |key: &str| {
            json_str_field(line, key).ok_or_else(|| format!("line {}: missing `{key}`", i + 1))
        };
        let severity = match field("severity")?.as_str() {
            "advice" => Severity::Advice,
            "warn" => Severity::Warn,
            "deny" => Severity::Deny,
            other => return Err(format!("line {}: unknown severity `{other}`", i + 1)),
        };
        out.push(Diagnostic {
            rule: field("rule")?,
            severity,
            message: field("message")?,
            help: field("help")?,
        });
    }
    Ok(out)
}

/// Statically known behaviour of a disorder-control strategy, as reported by
/// [`crate::strategy::DisorderControl::kind`]. This is what the plan
/// analyzer can reason about without running the strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// K = 0: zero latency, no reordering.
    DropAll,
    /// Constant user-chosen slack.
    FixedK(u64),
    /// Max-delay ratchet, optionally capped (`None` = unbounded K growth).
    Mp {
        /// Upper bound on K, if any.
        cap: Option<u64>,
    },
    /// Quality-driven adaptive slack.
    Aq {
        /// The quality target the controller steers towards.
        target: QualityTarget,
        /// Hard upper bound on K (`None` = effectively unbounded).
        k_max: Option<u64>,
    },
    /// Infinite buffer: exact results at end of stream.
    Oracle,
    /// A strategy the analyzer knows nothing about (external impls).
    Custom,
}

impl StrategyKind {
    /// The completeness level the strategy itself commits to, if any.
    fn target_completeness(&self) -> Option<f64> {
        match self {
            StrategyKind::Aq {
                target: QualityTarget::Completeness { q },
                ..
            } => Some(*q),
            _ => None,
        }
    }
}

/// A static declaration of the transport-delay regime the stream is expected
/// to exhibit, enabling feasibility checks before execution. See
/// `quill_gen::delay` for the generative models these summarize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayProfile {
    /// Delays never exceed `max_delay` event-time units.
    Bounded {
        /// The hard delay bound.
        max_delay: u64,
    },
    /// Delays are heavy-tailed / unbounded (e.g. Pareto transport delay):
    /// no finite K achieves completeness 1.0.
    Unbounded,
}

/// Statically analyze one query plan. Returns findings in severity order
/// (deny first); an empty vector means the plan is clean.
pub fn analyze_plan(
    query: &QuerySpec,
    strategy: &StrategyKind,
    opts: &ExecOptions,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_window(query, &mut diags);
    check_fold_path(query, &mut diags);
    check_quality_feasibility(strategy, opts, &mut diags);
    check_strategy(strategy, opts, &mut diags);
    check_parallel(query, opts, &mut diags);
    check_options(opts, &mut diags);
    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(&b.rule)));
    diags
}

/// Window/slide arithmetic: shared-pane eligibility and per-event fan-out.
fn check_window(query: &QuerySpec, diags: &mut Vec<Diagnostic>) {
    if let WindowSpec::Sliding { length, slide } = query.window {
        let (length, slide) = (length.raw(), slide.raw());
        if slide > 0 && length % slide != 0 {
            diags.push(Diagnostic::new(
                "plan.window.pane-alignment",
                Severity::Warn,
                format!(
                    "slide {slide} does not divide window length {length}: windows cannot be \
                     decomposed into shared panes, so every event folds into each of its \
                     ~{} containing windows",
                    length.div_ceil(slide.max(1))
                ),
                "choose a slide that divides the length to enable the shared-pane fold \
                 (one aggregate insert per event)",
            ));
        } else if slide > 0 && length / slide >= 32 {
            diags.push(Diagnostic::new(
                "plan.window.fanout",
                Severity::Advice,
                format!(
                    "each event belongs to {} overlapping windows (length {length} / slide \
                     {slide})",
                    length / slide
                ),
                "combinable aggregates use the shared-pane fold automatically; \
                 non-combinable ones pay the full fan-out — consider a coarser slide",
            ));
        }
    }
}

/// Aggregate combinability vs. the fold path the engine will choose.
fn check_fold_path(query: &QuerySpec, diags: &mut Vec<Diagnostic>) {
    if let WindowSpec::Sliding { length, slide } = query.window {
        if slide < length {
            let non_combinable: Vec<String> = query
                .aggregates
                .iter()
                .filter(|a| !a.kind.combinable())
                .map(|a| a.kind.to_string())
                .collect();
            if !non_combinable.is_empty() {
                diags.push(Diagnostic::new(
                    "plan.aggregate.fold-path",
                    Severity::Warn,
                    format!(
                        "non-combinable aggregate(s) [{}] over sliding windows keep O(window) \
                         state per window instance and forgo the shared-pane fold",
                        non_combinable.join(", ")
                    ),
                    "exact order statistics / distinct counts are not pane-decomposable; \
                     accept the cost, or use combinable aggregates (sum/mean/min/max/...)",
                ));
            }
        }
    }
}

/// The completeness level the run is being asked to achieve, combining the
/// provenance threshold with the strategy's own target (strictest wins).
fn required_completeness(strategy: &StrategyKind, opts: &ExecOptions) -> Option<f64> {
    match (opts.required_completeness, strategy.target_completeness()) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    }
}

/// Quality-target feasibility against the declared delay profile.
fn check_quality_feasibility(
    strategy: &StrategyKind,
    opts: &ExecOptions,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(profile) = opts.delay_profile else {
        return;
    };
    let req = required_completeness(strategy, opts);
    // An uncapped MP ratchet under unbounded delays still consumes the
    // profile (see `check_strategy`), so the hint is not dead there.
    let feeds_strategy_check =
        matches!(strategy, StrategyKind::Mp { cap: None }) && profile == DelayProfile::Unbounded;
    if req.is_none() && !matches!(strategy, StrategyKind::Aq { .. }) && !feeds_strategy_check {
        diags.push(Diagnostic::new(
            "plan.options.delay-profile-unused",
            Severity::Advice,
            "a delay profile is declared but no quality target exists anywhere (neither \
             ExecOptions::with_required_completeness nor a quality-driven strategy): the \
             feasibility checks have nothing to check",
            "set a completeness target, use AqKSlack, or drop with_delay_profile",
        ));
        return;
    }
    let wants_exact = req.is_some_and(|q| q >= 1.0);

    if wants_exact && profile == DelayProfile::Unbounded && *strategy != StrategyKind::Oracle {
        diags.push(Diagnostic::new(
            "plan.quality.infeasible",
            Severity::Deny,
            "completeness target 1.0 is unreachable under an unbounded delay distribution: \
             no finite slack K covers an unbounded tail",
            "lower the completeness target below 1.0, declare a bounded delay profile, or \
             use the offline OracleBuffer reference",
        ));
        return;
    }
    if let DelayProfile::Bounded { max_delay } = profile {
        let insufficient_k = match *strategy {
            StrategyKind::DropAll => Some(0),
            StrategyKind::FixedK(k) if k < max_delay => Some(k),
            StrategyKind::Mp { cap: Some(cap) } if cap < max_delay => Some(cap),
            StrategyKind::Aq {
                k_max: Some(k_max), ..
            } if k_max < max_delay => Some(k_max),
            _ => None,
        };
        if wants_exact {
            if let Some(k) = insufficient_k {
                diags.push(Diagnostic::new(
                    "plan.quality.infeasible",
                    Severity::Deny,
                    format!(
                        "completeness target 1.0 requires slack K >= the delay bound \
                         {max_delay}, but the strategy can reach at most K = {k}"
                    ),
                    "raise the slack (or its cap) to at least the delay bound, or lower \
                     the completeness target",
                ));
            }
        } else if let (Some(q), Some(k)) = (req, insufficient_k) {
            // A sub-1.0 target may still be met (depends on the delay CDF);
            // flag only the degenerate zero-slack case.
            if k == 0 && q > 0.0 {
                diags.push(Diagnostic::new(
                    "plan.quality.at-risk",
                    Severity::Warn,
                    format!(
                        "completeness target {q} with zero slack: every out-of-order \
                         arrival within the delay bound {max_delay} is lost"
                    ),
                    "use FixedKSlack/MpKSlack/AqKSlack to buy completeness with latency",
                ));
            }
        }
    }
}

/// Strategy-level sanity independent of the query.
fn check_strategy(strategy: &StrategyKind, opts: &ExecOptions, diags: &mut Vec<Diagnostic>) {
    if matches!(strategy, StrategyKind::Mp { cap: None })
        && opts.delay_profile == Some(DelayProfile::Unbounded)
    {
        diags.push(Diagnostic::new(
            "plan.strategy.unbounded-k",
            Severity::Warn,
            "uncapped MP-K-slack under an unbounded delay distribution: K ratchets to the \
             worst delay ever seen and never recovers, so latency and memory grow without \
             bound",
            "use MpKSlack::bounded(cap) or a quality-driven AqKSlack target",
        ));
    }
    if *strategy == StrategyKind::Oracle {
        diags.push(Diagnostic::new(
            "plan.strategy.oracle-offline",
            Severity::Advice,
            "OracleBuffer releases nothing until end of stream: exact results, unbounded \
             latency",
            "the oracle is the offline quality reference, not an online configuration",
        ));
    }
}

/// Parallel-executor configuration vs. the query's key structure.
fn check_parallel(query: &QuerySpec, opts: &ExecOptions, diags: &mut Vec<Diagnostic>) {
    let Some(config) = opts.parallel else {
        return;
    };
    if config.shards == 0 || config.batch_size == 0 || config.channel_capacity == 0 {
        diags.push(Diagnostic::new(
            "plan.parallel.config",
            Severity::Deny,
            format!(
                "degenerate parallel configuration: shards={}, batch_size={}, \
                 channel_capacity={} (all must be > 0)",
                config.shards, config.batch_size, config.channel_capacity
            ),
            "use ParallelConfig::new(shards) and adjust batching via with_batch_size / \
             with_channel_capacity",
        ));
        return;
    }
    if config.shards > 1 && query.key_field.is_none() {
        diags.push(Diagnostic::new(
            "plan.parallel.unkeyed",
            Severity::Warn,
            format!(
                "{} shards configured but the query has no key field: every event routes \
                 to one shard and the others idle",
                config.shards
            ),
            "set QuerySpec::key_field to shard by key, or run sequentially",
        ));
    }
    if let Some(keys) = opts.expected_key_cardinality {
        if query.key_field.is_some() && (config.shards as u64) > keys {
            diags.push(Diagnostic::new(
                "plan.parallel.shards-vs-keys",
                Severity::Warn,
                format!(
                    "{} shards exceed the expected key cardinality {keys}: at most {keys} \
                     shards can ever be busy",
                    config.shards
                ),
                "reduce shards to at most the number of distinct keys",
            ));
        }
    }
}

/// Conflicting or ineffective `ExecOptions` combinations.
fn check_options(opts: &ExecOptions, diags: &mut Vec<Diagnostic>) {
    if let Some(q) = opts.required_completeness {
        if !(q > 0.0 && q <= 1.0) || q.is_nan() {
            diags.push(Diagnostic::new(
                "plan.options.completeness-range",
                Severity::Deny,
                format!("required_completeness {q} outside (0, 1]"),
                "pass a fraction in (0, 1], e.g. with_required_completeness(0.95)",
            ));
        } else if !opts.trace.is_enabled() {
            diags.push(Diagnostic::new(
                "plan.options.completeness-without-trace",
                Severity::Warn,
                "required_completeness is set but tracing is disabled: violations are \
                 only flagged in the provenance layer, which needs an enabled \
                 FlightRecorder",
                "attach one via ExecOptions::with_trace(&recorder) or drop the target",
            ));
        }
    }
    if opts.snapshot_every_events > 0 && !opts.telemetry.is_enabled() {
        diags.push(Diagnostic::new(
            "plan.options.snapshot-without-telemetry",
            Severity::Warn,
            "periodic snapshots requested but telemetry is disabled: no snapshots will \
             be taken",
            "attach a registry via ExecOptions::with_telemetry(&registry) or drop \
             with_snapshot_every",
        ));
    }
    if opts.expected_key_cardinality == Some(0) {
        diags.push(Diagnostic::new(
            "plan.options.expected-keys-zero",
            Severity::Deny,
            "expected key cardinality of 0 (a keyed stream has at least one key)",
            "pass the approximate number of distinct keys, or omit the hint",
        ));
    } else if opts.expected_key_cardinality.is_some() && opts.parallel.is_none() {
        diags.push(Diagnostic::new(
            "plan.options.expected-keys-without-parallel",
            Severity::Warn,
            "expected key cardinality is hinted but execution is sequential: the hint only \
             feeds the shard-saturation check, which needs a parallel configuration",
            "use ExecOptions::parallel(config) or drop with_expected_keys",
        ));
    }
    if opts.global_staging && opts.parallel.is_none() {
        diags.push(Diagnostic::new(
            "plan.options.global-staging-sequential",
            Severity::Warn,
            "global staging is pinned but execution is sequential: sequential runs always \
             stage globally, so the flag changes nothing",
            "use ExecOptions::parallel(config) to compare staging dataflows, or drop \
             with_global_staging",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::QuerySpec;
    use quill_engine::aggregate::{AggregateKind, AggregateSpec};
    use quill_engine::parallel::ParallelConfig;
    use quill_engine::window::WindowSpec;

    fn query(window: WindowSpec, kind: AggregateKind, key: Option<usize>) -> QuerySpec {
        QuerySpec::new(window, vec![AggregateSpec::new(kind, 0, "a")], key)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &ExecOptions::sequential());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn misaligned_slide_warns_about_panes() {
        let q = query(WindowSpec::sliding(100u64, 30u64), AggregateKind::Sum, None);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &ExecOptions::sequential());
        assert!(rules(&diags).contains(&"plan.window.pane-alignment"));
        assert!(diags.iter().all(|d| d.severity < Severity::Deny));
    }

    #[test]
    fn non_combinable_sliding_warns_about_fold_path() {
        let q = query(
            WindowSpec::sliding(100u64, 10u64),
            AggregateKind::Median,
            None,
        );
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &ExecOptions::sequential());
        assert!(rules(&diags).contains(&"plan.aggregate.fold-path"));
    }

    #[test]
    fn exact_completeness_under_unbounded_delay_is_denied() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential()
            .with_delay_profile(DelayProfile::Unbounded)
            .with_required_completeness(1.0);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(1_000_000), &opts);
        assert_eq!(diags[0].rule, "plan.quality.infeasible");
        assert_eq!(diags[0].severity, Severity::Deny);
        // The oracle is exempt (exact results at end of stream).
        let diags = analyze_plan(&q, &StrategyKind::Oracle, &opts);
        assert!(!rules(&diags).contains(&"plan.quality.infeasible"));
    }

    #[test]
    fn fixed_k_below_declared_bound_is_denied_for_exact_targets() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential()
            .with_delay_profile(DelayProfile::Bounded { max_delay: 500 })
            .with_required_completeness(1.0);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(100), &opts);
        assert_eq!(diags[0].rule, "plan.quality.infeasible");
        // K at the bound is feasible.
        let diags = analyze_plan(&q, &StrategyKind::FixedK(500), &opts);
        assert!(!rules(&diags).contains(&"plan.quality.infeasible"));
    }

    #[test]
    fn aq_exact_target_with_low_k_max_is_denied() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let strategy = StrategyKind::Aq {
            target: QualityTarget::Completeness { q: 1.0 },
            k_max: Some(100),
        };
        let opts =
            ExecOptions::sequential().with_delay_profile(DelayProfile::Bounded { max_delay: 500 });
        let diags = analyze_plan(&q, &strategy, &opts);
        assert_eq!(diags[0].rule, "plan.quality.infeasible");
    }

    #[test]
    fn feasibility_is_silent_without_a_delay_profile() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential().with_required_completeness(1.0);
        let diags = analyze_plan(&q, &StrategyKind::DropAll, &opts);
        assert!(!rules(&diags).contains(&"plan.quality.infeasible"));
    }

    #[test]
    fn unkeyed_parallel_warns() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::parallel(ParallelConfig::new(4));
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(rules(&diags).contains(&"plan.parallel.unkeyed"));
    }

    #[test]
    fn shards_beyond_keys_warn() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, Some(0));
        let opts = ExecOptions::parallel(ParallelConfig::new(8)).with_expected_keys(3);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(rules(&diags).contains(&"plan.parallel.shards-vs-keys"));
        let opts = ExecOptions::parallel(ParallelConfig::new(2)).with_expected_keys(3);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(!rules(&diags).contains(&"plan.parallel.shards-vs-keys"));
    }

    #[test]
    fn conflicting_options_warn_or_deny() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential().with_snapshot_every(100);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(rules(&diags).contains(&"plan.options.snapshot-without-telemetry"));

        let opts = ExecOptions::sequential().with_required_completeness(1.5);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert_eq!(diags[0].rule, "plan.options.completeness-range");
        assert_eq!(diags[0].severity, Severity::Deny);
    }

    #[test]
    fn dead_delay_profile_advises() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts =
            ExecOptions::sequential().with_delay_profile(DelayProfile::Bounded { max_delay: 100 });
        let diags = analyze_plan(&q, &StrategyKind::FixedK(500), &opts);
        assert!(rules(&diags).contains(&"plan.options.delay-profile-unused"));
        // A quality-driven strategy consumes the profile: no advice.
        let aq = StrategyKind::Aq {
            target: QualityTarget::Completeness { q: 0.9 },
            k_max: None,
        };
        let diags = analyze_plan(&q, &aq, &opts);
        assert!(!rules(&diags).contains(&"plan.options.delay-profile-unused"));
        // So does the uncapped-MP unbounded-delay check.
        let opts = ExecOptions::sequential().with_delay_profile(DelayProfile::Unbounded);
        let diags = analyze_plan(&q, &StrategyKind::Mp { cap: None }, &opts);
        assert!(!rules(&diags).contains(&"plan.options.delay-profile-unused"));
        assert!(rules(&diags).contains(&"plan.strategy.unbounded-k"));
    }

    #[test]
    fn expected_keys_without_parallel_warns() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, Some(0));
        let opts = ExecOptions::sequential().with_expected_keys(4);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(rules(&diags).contains(&"plan.options.expected-keys-without-parallel"));
        let opts = ExecOptions::parallel(ParallelConfig::new(2)).with_expected_keys(4);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(!rules(&diags).contains(&"plan.options.expected-keys-without-parallel"));
    }

    #[test]
    fn global_staging_without_parallel_warns() {
        let q = query(WindowSpec::tumbling(100u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential().with_global_staging(true);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(rules(&diags).contains(&"plan.options.global-staging-sequential"));
        let opts = ExecOptions::parallel(ParallelConfig::new(2)).with_global_staging(true);
        let diags = analyze_plan(&q, &StrategyKind::FixedK(50), &opts);
        assert!(!rules(&diags).contains(&"plan.options.global-staging-sequential"));
    }

    #[test]
    fn diagnostics_round_trip_through_jsonl() {
        let q = query(
            WindowSpec::sliding(100u64, 30u64),
            AggregateKind::Median,
            None,
        );
        let opts = ExecOptions::parallel(ParallelConfig::new(4)).with_snapshot_every(10);
        let diags = analyze_plan(&q, &StrategyKind::Oracle, &opts);
        assert!(!diags.is_empty());
        let text: String = diags.iter().map(|d| d.to_jsonl_line() + "\n").collect();
        let parsed = parse_plan_jsonl(&text).unwrap();
        assert_eq!(parsed, diags);
    }

    #[test]
    fn deny_sorts_first() {
        let q = query(WindowSpec::sliding(100u64, 30u64), AggregateKind::Sum, None);
        let opts = ExecOptions::sequential()
            .with_delay_profile(DelayProfile::Unbounded)
            .with_required_completeness(1.0);
        let diags = analyze_plan(&q, &StrategyKind::DropAll, &opts);
        assert!(diags.len() >= 2);
        assert_eq!(diags[0].severity, Severity::Deny);
    }
}
