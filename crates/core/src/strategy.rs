//! The disorder-control strategy interface and baseline strategies.
//!
//! A [`DisorderControl`] sits between the arriving (out-of-order) stream and
//! the query pipeline: it decides how long to hold events, releases them in
//! timestamp order, and punctuates the output with watermarks that drive
//! window emission. The strategies differ **only** in how they choose the
//! slack bound `K` over time:
//!
//! | strategy | K | guarantees | cost |
//! |---|---|---|---|
//! | [`DropAll`] | 0 | none | zero latency |
//! | [`FixedKSlack`] | constant, user-chosen | whatever the chosen K buys | constant latency, blind to the workload |
//! | [`MpKSlack`] | max delay seen so far | converges to zero loss on bounded delays | latency ratchets up to the worst burst, never down |
//! | [`crate::aq::AqKSlack`] | quality-driven, adaptive | meets the user's quality target | minimal latency for the target (the paper's contribution) |
//! | [`OracleBuffer`] | ∞ | exact results | unbounded latency (offline reference) |

use crate::buffer::{BufferStats, SlackBuffer};
use crate::plan::StrategyKind;
use quill_engine::prelude::{Event, StreamElement, TimeDelta};
use quill_telemetry::trace::{FlightRecorder, KChangeReason, TraceKind};
use quill_telemetry::Registry;

/// A pluggable disorder-control strategy.
pub trait DisorderControl: Send {
    /// Strategy name for reports.
    fn name(&self) -> String;

    /// Attach runtime telemetry instruments. Buffer-backed strategies wire
    /// their [`SlackBuffer`] to `quill.buffer.*`; adaptive strategies add
    /// `quill.controller.*` / `quill.estimator.*`. Default: no telemetry.
    fn instrument(&mut self, _telemetry: &Registry) {}

    /// Attach a flight recorder. Buffer-backed strategies wire their
    /// [`SlackBuffer`] (late arrivals, emits) and record an
    /// [`KChangeReason::Initial`] K-change so every trace names the K in
    /// force from the start; adaptive strategies additionally record each
    /// K decision with its trigger reason. Default: no tracing.
    fn attach_trace(&mut self, _trace: &FlightRecorder) {}

    /// Attach a pipeline span recorder. Buffer-backed strategies wire their
    /// [`SlackBuffer`] so every release records a
    /// [`quill_telemetry::Stage::BufferResidency`] span (event timestamp →
    /// releasing watermark). Default: no spans.
    fn attach_spans(&mut self, _spans: &quill_telemetry::SpanRecorder) {}

    /// Feed one arriving event; ordered releases and watermarks are appended
    /// to `out`.
    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>);

    /// Apply an out-of-band per-source heartbeat: a promise that no future
    /// event from `source` carries a timestamp below `ts` (Srivastava &
    /// Widom-style punctuation). Progress-driven strategies
    /// ([`crate::punctuated::PunctuatedBuffer`]) advance their combined
    /// watermark and append any unlocked releases to `out`; delay-driven
    /// strategies ignore heartbeats (the default no-op), because their K is
    /// a function of observed arrival delays, not source progress.
    fn on_heartbeat(
        &mut self,
        _source: &quill_engine::value::Key,
        _ts: quill_engine::time::Timestamp,
        _out: &mut Vec<StreamElement>,
    ) {
    }

    /// End of stream: release everything and emit `Flush`.
    fn finish(&mut self, out: &mut Vec<StreamElement>);

    /// The slack currently in force.
    fn current_k(&self) -> TimeDelta;

    /// Buffer occupancy / lateness counters.
    fn buffer_stats(&self) -> BufferStats;

    /// The statically known behaviour class of this strategy, consumed by
    /// the pre-execution plan analyzer ([`crate::plan::analyze_plan`]).
    /// Default: [`StrategyKind::Custom`] (the analyzer assumes nothing).
    fn kind(&self) -> StrategyKind {
        StrategyKind::Custom
    }

    /// Switch the strategy into *control-only* staging for shard-local
    /// window finalization: [`DisorderControl::on_event`] then forwards
    /// events unordered (arrival order) interleaved with the exact same
    /// watermark sequence full staging would emit, and per-shard stages
    /// downstream re-apply the ordering for their own keys. Returns `true`
    /// if the strategy supports the split; `false` (the default) keeps full
    /// staging. Must be called before the first event. Supportable whenever
    /// the strategy's K / watermark decisions depend only on arrival order
    /// and event fields — never on held buffer contents; every built-in
    /// strategy qualifies.
    fn split_for_shard_staging(&mut self) -> bool {
        false
    }
}

/// Record the strategy's starting K so a trace always names the slack in
/// force before the first adaptive decision.
pub(crate) fn record_initial_k(trace: &FlightRecorder, k: u64) {
    if trace.is_enabled() {
        trace.record(
            0,
            0,
            TraceKind::KChange {
                old_k: k,
                new_k: k,
                reason: KChangeReason::Initial,
            },
        );
    }
}

/// K = 0: release every event instantly; any disorder reaches the query as
/// late events. The zero-latency / lowest-quality endpoint.
pub struct DropAll {
    buf: SlackBuffer,
}

impl DropAll {
    /// Build the strategy.
    pub fn new() -> DropAll {
        DropAll {
            buf: SlackBuffer::new(0u64),
        }
    }
}

impl Default for DropAll {
    fn default() -> Self {
        DropAll::new()
    }
}

impl DisorderControl for DropAll {
    fn instrument(&mut self, telemetry: &Registry) {
        self.buf.instrument(telemetry);
    }
    fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.buf.attach_trace(trace);
        record_initial_k(trace, 0);
    }
    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }
    fn name(&self) -> String {
        "drop".into()
    }
    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        self.buf.insert(e, out);
    }
    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }
    fn current_k(&self) -> TimeDelta {
        TimeDelta::ZERO
    }
    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }
    fn kind(&self) -> StrategyKind {
        StrategyKind::DropAll
    }
    fn split_for_shard_staging(&mut self) -> bool {
        self.buf.set_control_only();
        true
    }
}

/// Classic fixed K-slack (Babcock et al.): a constant, user-chosen slack.
pub struct FixedKSlack {
    k: TimeDelta,
    buf: SlackBuffer,
}

impl FixedKSlack {
    /// Build with the given constant slack.
    pub fn new(k: impl Into<TimeDelta>) -> FixedKSlack {
        let k = k.into();
        FixedKSlack {
            k,
            buf: SlackBuffer::new(k),
        }
    }
}

impl DisorderControl for FixedKSlack {
    fn instrument(&mut self, telemetry: &Registry) {
        self.buf.instrument(telemetry);
    }
    fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.buf.attach_trace(trace);
        record_initial_k(trace, self.k.raw());
    }
    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }
    fn name(&self) -> String {
        format!("fixed(K={})", self.k.raw())
    }
    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        self.buf.insert(e, out);
    }
    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }
    fn current_k(&self) -> TimeDelta {
        self.k
    }
    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }
    fn kind(&self) -> StrategyKind {
        StrategyKind::FixedK(self.k.raw())
    }
    fn split_for_shard_staging(&mut self) -> bool {
        self.buf.set_control_only();
        true
    }
}

/// MP-K-slack (Mutschler & Philippsen): the conservative adaptive baseline.
/// `K` ratchets up to the maximum delay observed so far (optionally capped),
/// guaranteeing eventual zero loss for bounded delays — at the price of
/// latency that tracks the *worst* burst ever seen and never recovers.
pub struct MpKSlack {
    buf: SlackBuffer,
    max_delay: TimeDelta,
    cap: TimeDelta,
    trace: FlightRecorder,
}

impl MpKSlack {
    /// Uncapped MP-K-slack.
    pub fn new() -> MpKSlack {
        MpKSlack {
            buf: SlackBuffer::new(0u64),
            max_delay: TimeDelta::ZERO,
            cap: TimeDelta::MAX,
            trace: FlightRecorder::disabled(),
        }
    }

    /// MP-K-slack with an upper bound on K (the "bounded" variant used when
    /// memory or latency must stay finite under unbounded tails).
    pub fn bounded(cap: impl Into<TimeDelta>) -> MpKSlack {
        MpKSlack {
            buf: SlackBuffer::new(0u64),
            max_delay: TimeDelta::ZERO,
            cap: cap.into(),
            trace: FlightRecorder::disabled(),
        }
    }
}

impl Default for MpKSlack {
    fn default() -> Self {
        MpKSlack::new()
    }
}

impl DisorderControl for MpKSlack {
    fn instrument(&mut self, telemetry: &Registry) {
        self.buf.instrument(telemetry);
    }
    fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.buf.attach_trace(trace);
        self.trace = trace.clone();
        record_initial_k(trace, self.max_delay.raw());
    }
    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }
    fn name(&self) -> String {
        if self.cap == TimeDelta::MAX {
            "mp".into()
        } else {
            format!("mp(cap={})", self.cap.raw())
        }
    }
    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        // Delay measured against the clock *before* this event advances it.
        let delay = self.buf.clock().delta_since(e.ts);
        if delay > self.max_delay {
            let old = self.max_delay;
            self.max_delay = delay.min(self.cap);
            self.buf.set_k(self.max_delay);
            if self.trace.is_enabled() && self.max_delay != old {
                self.trace.record(
                    e.ts.raw(),
                    0,
                    TraceKind::KChange {
                        old_k: old.raw(),
                        new_k: self.max_delay.raw(),
                        reason: KChangeReason::Ratchet,
                    },
                );
            }
        }
        self.buf.insert(e, out);
    }
    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }
    fn current_k(&self) -> TimeDelta {
        self.max_delay
    }
    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }
    fn kind(&self) -> StrategyKind {
        StrategyKind::Mp {
            cap: (self.cap != TimeDelta::MAX).then(|| self.cap.raw()),
        }
    }
    fn split_for_shard_staging(&mut self) -> bool {
        // The ratchet reads only the clock and the arriving timestamp, so
        // control-only staging leaves every K decision unchanged.
        self.buf.set_control_only();
        true
    }
}

/// Infinite buffer: holds everything until end of stream, then releases the
/// exact in-order sequence. The quality oracle / offline reference.
pub struct OracleBuffer {
    buf: SlackBuffer,
}

impl OracleBuffer {
    /// Build the strategy.
    pub fn new() -> OracleBuffer {
        OracleBuffer {
            buf: SlackBuffer::new(TimeDelta::MAX),
        }
    }
}

impl Default for OracleBuffer {
    fn default() -> Self {
        OracleBuffer::new()
    }
}

impl DisorderControl for OracleBuffer {
    fn instrument(&mut self, telemetry: &Registry) {
        self.buf.instrument(telemetry);
    }
    fn attach_trace(&mut self, trace: &FlightRecorder) {
        self.buf.attach_trace(trace);
        record_initial_k(trace, u64::MAX);
    }
    fn attach_spans(&mut self, spans: &quill_telemetry::SpanRecorder) {
        self.buf.attach_spans(spans);
    }
    fn name(&self) -> String {
        "oracle".into()
    }
    fn on_event(&mut self, e: Event, out: &mut Vec<StreamElement>) {
        self.buf.insert(e, out);
    }
    fn finish(&mut self, out: &mut Vec<StreamElement>) {
        self.buf.finish(out);
    }
    fn current_k(&self) -> TimeDelta {
        TimeDelta::MAX
    }
    fn buffer_stats(&self) -> BufferStats {
        self.buf.stats()
    }
    fn kind(&self) -> StrategyKind {
        StrategyKind::Oracle
    }
    fn split_for_shard_staging(&mut self) -> bool {
        self.buf.set_control_only();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::prelude::{Row, Timestamp, Value};

    fn ev(ts: u64, seq: u64) -> Event {
        Event::new(ts, seq, Row::new([Value::Int(ts as i64)]))
    }

    fn run(s: &mut dyn DisorderControl, arrivals: Vec<Event>) -> Vec<StreamElement> {
        let mut out = Vec::new();
        for e in arrivals {
            s.on_event(e, &mut out);
        }
        s.finish(&mut out);
        out
    }

    fn event_ts(out: &[StreamElement]) -> Vec<u64> {
        out.iter()
            .filter_map(|e| e.as_event())
            .map(|e| e.ts.raw())
            .collect()
    }

    #[test]
    fn drop_all_forwards_immediately_in_arrival_order() {
        let mut s = DropAll::new();
        let out = run(&mut s, vec![ev(10, 0), ev(5, 1), ev(20, 2)]);
        assert_eq!(event_ts(&out), vec![10, 5, 20]);
        assert_eq!(s.buffer_stats().late_passed, 1);
        assert_eq!(s.current_k(), TimeDelta::ZERO);
    }

    #[test]
    fn fixed_k_reorders_up_to_k() {
        let mut s = FixedKSlack::new(10u64);
        let out = run(&mut s, vec![ev(10, 0), ev(5, 1), ev(20, 2), ev(3, 3)]);
        // ts=5 fits in K=10; ts=3 arrives after clock=20 (delay 17 > 10) and
        // after watermark 10 → late pass.
        let ts = event_ts(&out);
        assert_eq!(s.buffer_stats().late_passed, 1);
        // In-order portion: 5, 10 before 20.
        let pos = |v: u64| ts.iter().position(|&t| t == v).unwrap();
        assert!(pos(5) < pos(10));
        assert!(pos(10) < pos(20));
        assert!(s.name().contains("10"));
    }

    #[test]
    fn mp_ratchets_k_to_max_delay() {
        let mut s = MpKSlack::new();
        let mut out = Vec::new();
        s.on_event(ev(100, 0), &mut out);
        assert_eq!(s.current_k(), TimeDelta::ZERO);
        s.on_event(ev(40, 1), &mut out); // delay 60
        assert_eq!(s.current_k(), TimeDelta(60));
        s.on_event(ev(90, 2), &mut out); // delay 10 < 60 → unchanged
        assert_eq!(s.current_k(), TimeDelta(60));
        s.on_event(ev(300, 3), &mut out);
        s.on_event(ev(50, 4), &mut out); // delay 250
        assert_eq!(s.current_k(), TimeDelta(250));
    }

    #[test]
    fn mp_never_shrinks() {
        let mut s = MpKSlack::new();
        let mut out = Vec::new();
        s.on_event(ev(1000, 0), &mut out);
        s.on_event(ev(1, 1), &mut out); // delay 999
        for i in 0..100 {
            s.on_event(ev(1001 + i, 2 + i), &mut out); // all in order
        }
        assert_eq!(s.current_k(), TimeDelta(999));
    }

    #[test]
    fn mp_bounded_caps_k() {
        let mut s = MpKSlack::bounded(50u64);
        let mut out = Vec::new();
        s.on_event(ev(1000, 0), &mut out);
        s.on_event(ev(1, 1), &mut out);
        assert_eq!(s.current_k(), TimeDelta(50));
        assert!(s.name().contains("cap=50"));
    }

    #[test]
    fn oracle_emits_exact_sorted_sequence() {
        let mut s = OracleBuffer::new();
        let out = run(&mut s, vec![ev(10, 0), ev(5, 1), ev(20, 2), ev(1, 3)]);
        assert_eq!(event_ts(&out), vec![1, 5, 10, 20]);
        assert_eq!(s.buffer_stats().late_passed, 0);
        // Nothing until finish.
        let mut s2 = OracleBuffer::new();
        let mut out2 = Vec::new();
        s2.on_event(ev(10, 0), &mut out2);
        assert!(event_ts(&out2).is_empty());
    }

    #[test]
    fn mp_ratchet_is_traced_with_reason() {
        let trace = FlightRecorder::new(64);
        let mut s = MpKSlack::new();
        s.attach_trace(&trace);
        let mut out = Vec::new();
        s.on_event(ev(100, 0), &mut out);
        s.on_event(ev(40, 1), &mut out); // delay 60 → ratchet
        s.on_event(ev(90, 2), &mut out); // delay 10 → no change
        let changes: Vec<_> = trace
            .events()
            .into_iter()
            .filter_map(|t| match t.kind {
                TraceKind::KChange {
                    old_k,
                    new_k,
                    reason,
                } => Some((old_k, new_k, reason, t.at)),
                _ => None,
            })
            .collect();
        assert_eq!(
            changes,
            vec![
                (0, 0, KChangeReason::Initial, 0),
                (0, 60, KChangeReason::Ratchet, 40),
            ]
        );
    }

    #[test]
    fn watermark_follows_k_for_fixed() {
        let mut s = FixedKSlack::new(5u64);
        let mut out = Vec::new();
        s.on_event(ev(100, 0), &mut out);
        let wm = out.iter().rev().find_map(|e| match e {
            StreamElement::Watermark(w) => Some(*w),
            _ => None,
        });
        assert_eq!(wm, Some(Timestamp(95)));
    }
}
