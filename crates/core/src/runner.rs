//! End-to-end query runner: strategy + windowed query + measurement.
//!
//! [`execute`] drives one continuous query over one arrival-ordered event
//! sequence under a chosen [`DisorderControl`] strategy, and measures
//! everything the experiments report: per-result latency (event-time),
//! result quality vs. the in-order oracle, K and buffer-occupancy time
//! series, wall-clock processing time, and (when an enabled
//! [`quill_telemetry::Registry`] is supplied via [`ExecOptions`]) periodic
//! telemetry snapshots. [`ExecOptions`] selects sequential execution or the
//! batched keyed-parallel executor. For resident, push-mode execution with
//! runtime query registration, see [`crate::session::Session`].

use crate::plan::{analyze_plan, DelayProfile, Diagnostic, Severity};
use crate::strategy::DisorderControl;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::error::{EngineError, Result};
use quill_engine::event::{ClockTracker, Event, StreamElement};
use quill_engine::fiba::WindowState;
use quill_engine::operator::{
    LatePolicy, Operator, ShardStage, WindowAggregateOp, WindowOpStats, WindowResult,
};
use quill_engine::parallel::{run_keyed_parallel_traced, ParallelConfig};
use quill_engine::time::{TimeDelta, Timestamp};
use quill_engine::window::WindowSpec;
use quill_metrics::quality_eval::{oracle_results, score, QualityReport};
use quill_metrics::{LatencyRecorder, Summary, TimeSeries};
use quill_telemetry::trace::{FlightRecorder, PostMortem, ProvenanceBuilder, ProvenanceRecord};
use quill_telemetry::{Registry, ReporterConfig, Snapshot, SpanRecorder, Stage, TelemetryReporter};

/// The continuous query to execute.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Window shape.
    pub window: WindowSpec,
    /// Aggregates to compute per window.
    pub aggregates: Vec<AggregateSpec>,
    /// Optional grouping key field.
    pub key_field: Option<usize>,
}

impl QuerySpec {
    /// Start building a query fluently: window, then aggregates, then an
    /// optional key field; everything is validated at
    /// [`QuerySpecBuilder::build`].
    ///
    /// ```
    /// use quill_core::prelude::*;
    ///
    /// let query = QuerySpec::builder()
    ///     .window(WindowSpec::tumbling(1000u64))
    ///     .aggregate(AggregateKind::Mean, 1, "mean_price")
    ///     .key_field(0)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(query.key_field, Some(0));
    /// ```
    pub fn builder() -> QuerySpecBuilder {
        QuerySpecBuilder {
            window: None,
            aggregates: Vec::new(),
            key_field: None,
        }
    }

    /// Convenience constructor.
    pub fn new(
        window: WindowSpec,
        aggregates: Vec<AggregateSpec>,
        key_field: Option<usize>,
    ) -> QuerySpec {
        QuerySpec {
            window,
            aggregates,
            key_field,
        }
    }

    /// Build a query by *field name* against a schema: each `(kind, field
    /// name)` pair becomes an aggregate over the resolved index (output
    /// column named `<kind>_<field>`), and `key` optionally names the
    /// grouping field.
    ///
    /// ```
    /// use quill_core::runner::QuerySpec;
    /// use quill_engine::prelude::*;
    ///
    /// let schema = Schema::new([
    ///     ("symbol", FieldType::Int),
    ///     ("price", FieldType::Float),
    /// ]).unwrap();
    /// let q = QuerySpec::by_name(
    ///     &schema,
    ///     WindowSpec::tumbling(1000u64),
    ///     &[(AggregateKind::Mean, "price")],
    ///     Some("symbol"),
    /// ).unwrap();
    /// assert_eq!(q.aggregates[0].field, 1);
    /// assert_eq!(q.key_field, Some(0));
    /// ```
    ///
    /// # Errors
    /// [`quill_engine::error::EngineError::UnknownField`] for unresolved
    /// names; invalid window/aggregate parameters propagate.
    pub fn by_name(
        schema: &quill_engine::value::Schema,
        window: WindowSpec,
        aggregates: &[(quill_engine::aggregate::AggregateKind, &str)],
        key: Option<&str>,
    ) -> Result<QuerySpec> {
        window.validate()?;
        let aggs = aggregates
            .iter()
            .map(|&(kind, name)| {
                let field = schema.index_of(name)?;
                let spec = AggregateSpec::new(kind, field, format!("{kind}_{name}"));
                spec.validate()?;
                Ok(spec)
            })
            .collect::<Result<Vec<_>>>()?;
        let key_field = key.map(|k| schema.index_of(k)).transpose()?;
        Ok(QuerySpec {
            window,
            aggregates: aggs,
            key_field,
        })
    }
}

/// Fluent, validated construction of a [`QuerySpec`] — see
/// [`QuerySpec::builder`].
#[derive(Debug, Clone)]
pub struct QuerySpecBuilder {
    window: Option<WindowSpec>,
    aggregates: Vec<AggregateSpec>,
    key_field: Option<usize>,
}

impl QuerySpecBuilder {
    /// Set the window shape (required).
    pub fn window(mut self, window: WindowSpec) -> QuerySpecBuilder {
        self.window = Some(window);
        self
    }

    /// Append one aggregate over `field`, naming its output column.
    pub fn aggregate(
        mut self,
        kind: AggregateKind,
        field: usize,
        name: impl Into<String>,
    ) -> QuerySpecBuilder {
        self.aggregates.push(AggregateSpec::new(kind, field, name));
        self
    }

    /// Group results by the given row index.
    pub fn key_field(mut self, field: usize) -> QuerySpecBuilder {
        self.key_field = Some(field);
        self
    }

    /// Validate and build the query.
    ///
    /// # Errors
    /// [`EngineError::InvalidPipeline`] when the window is missing or no
    /// aggregate was added; invalid window/aggregate parameters propagate.
    pub fn build(self) -> Result<QuerySpec> {
        let window = self
            .window
            .ok_or_else(|| EngineError::InvalidPipeline("query window is required".into()))?;
        window.validate()?;
        if self.aggregates.is_empty() {
            return Err(EngineError::InvalidPipeline(
                "at least one aggregate is required".into(),
            ));
        }
        for a in &self.aggregates {
            a.validate()?;
        }
        Ok(QuerySpec {
            window,
            aggregates: self.aggregates,
            key_field: self.key_field,
        })
    }
}

/// How the runner executes a query and what it observes while doing so.
/// `Default` is sequential, telemetry disabled.
///
/// # Toggle reference
///
/// Options compose; none of them silently overrides another. Combinations
/// that interact are checked by the static plan analyzer
/// ([`crate::plan::analyze_plan`]) before execution — conflicting or
/// ineffective pairings surface as `plan.options.*` diagnostics instead of
/// being resolved by builder-call ordering.
///
/// | toggle | effect | inert without | plan rule when misused |
/// |---|---|---|---|
/// | [`with_telemetry`](ExecOptions::with_telemetry) | instruments record into the registry | — | — |
/// | [`with_snapshot_every`](ExecOptions::with_snapshot_every) | periodic registry snapshots | enabled telemetry | `plan.options.snapshot-without-telemetry` (warn) |
/// | [`with_trace`](ExecOptions::with_trace) | structured trace ring, provenance records | — | — |
/// | [`with_spans`](ExecOptions::with_spans) | pipeline stage spans (logical clock), per-stage latency attribution | — | — |
/// | [`with_required_completeness`](ExecOptions::with_required_completeness) | flags windows below the target; builds post-mortems | enabled trace (for post-mortems) | `plan.options.completeness-without-trace` (warn); `plan.options.completeness-range` (deny) outside (0, 1] |
/// | [`with_delay_profile`](ExecOptions::with_delay_profile) | enables quality-feasibility checks | a quality target somewhere (options or strategy) | `plan.options.delay-profile-unused` (advice) |
/// | [`with_expected_keys`](ExecOptions::with_expected_keys) | shard-saturation check | parallel execution | `plan.options.expected-keys-without-parallel` (warn); `plan.options.expected-keys-zero` (deny) for 0 |
/// | [`with_global_staging`](ExecOptions::with_global_staging) | pins the legacy global-staging dataflow | parallel execution | `plan.options.global-staging-sequential` (warn) |
/// | [`with_window_state`](ExecOptions::with_window_state) | selects the window state backend (FiBA is the default; `Legacy` restores per-window/pane state) | — | — |
/// | [`parallel`](ExecOptions::parallel) | keyed-parallel executor | — | `plan.parallel.*` rules |
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// `Some(config)` fans the windowing work out on the batched
    /// keyed-parallel executor; `None` runs single-threaded.
    pub parallel: Option<ParallelConfig>,
    /// Telemetry registry instruments record into.
    /// [`Registry::disabled`] (the default) makes every instrument a no-op.
    pub telemetry: Registry,
    /// Take a telemetry snapshot every this many input events (0 = only the
    /// final end-of-run snapshot). Ignored when telemetry is disabled.
    pub snapshot_every_events: u64,
    /// Flight recorder the strategy, buffer and window operators record
    /// structured [`quill_telemetry::TraceEvent`]s into.
    /// [`FlightRecorder::disabled`] (the default) makes every hook a branch.
    /// With an enabled recorder, [`RunOutput::provenance`] carries one
    /// record per scored window and [`RunOutput::post_mortems`] the causal
    /// trace slice of every window that violated
    /// [`ExecOptions::required_completeness`].
    pub trace: FlightRecorder,
    /// Pipeline span recorder every stage records begin/end spans into, on
    /// the logical (event-time) clock: buffer residency, routing, shard
    /// staging, window finalization, merge, and result delivery.
    /// [`SpanRecorder::disabled`] (the default) makes every hook a branch.
    /// Drain with [`SpanRecorder::take`] for timeline export, or call
    /// [`SpanRecorder::instrument`] first so per-stage duration histograms
    /// (`quill.span.<stage>`) land in `telemetry`.
    pub spans: SpanRecorder,
    /// Per-window completeness target used to flag violations in the
    /// provenance layer. `None` (the default) means no window is considered
    /// violated. Only consulted when `trace` is enabled.
    pub required_completeness: Option<f64>,
    /// Statically declared transport-delay regime, enabling the plan
    /// analyzer's quality-feasibility checks ([`crate::plan::analyze_plan`]).
    /// `None` (the default) keeps those checks silent.
    pub delay_profile: Option<DelayProfile>,
    /// Approximate number of distinct keys expected on the stream; lets the
    /// plan analyzer flag shard counts that can never be saturated.
    pub expected_key_cardinality: Option<u64>,
    /// Force the legacy *global* staging dataflow for parallel runs: the
    /// disorder-control buffer orders the whole stream before fan-out. The
    /// default (`false`) uses **shard-local window finalization** whenever
    /// the strategy supports [`DisorderControl::split_for_shard_staging`]:
    /// the strategy runs control-only (clock / watermark / K decisions and
    /// accounting unchanged), events reach their shard unordered, and each
    /// shard re-orders and finalizes its own keys' windows behind a
    /// [`ShardStage`] — element-identical output with no global reorder on
    /// the hot path. Sequential runs ignore this flag.
    pub global_staging: bool,
    /// Window state backend for the window operators this run constructs.
    /// The default, [`WindowState::Fiba`], backs every (key, window) with
    /// finger B-tree aggregators (`quill_engine::fiba`): out-of-order events
    /// are absorbed in O(log d) of their disorder distance and window slides
    /// bulk-evict, so admitting stragglers directly into open windows is
    /// cheap. [`WindowState::Legacy`] restores the original per-window /
    /// shared-pane state for differential testing and benchmarks. Results
    /// are element-identical across backends (float aggregates up to the
    /// documented non-associativity tolerance).
    pub window_state: WindowState,
}

impl ExecOptions {
    /// Sequential execution, telemetry disabled (same as `Default`).
    pub fn sequential() -> ExecOptions {
        ExecOptions::default()
    }

    /// Parallel execution with the given executor configuration.
    pub fn parallel(config: ParallelConfig) -> ExecOptions {
        ExecOptions {
            parallel: Some(config),
            ..ExecOptions::default()
        }
    }

    /// Record telemetry into `registry` (cloned; clones share instruments).
    pub fn with_telemetry(mut self, registry: &Registry) -> ExecOptions {
        self.telemetry = registry.clone();
        self
    }

    /// Snapshot every `n` input events in addition to the final snapshot.
    pub fn with_snapshot_every(mut self, n: u64) -> ExecOptions {
        self.snapshot_every_events = n;
        self
    }

    /// Record trace events into `trace` (cloned; clones share the ring).
    pub fn with_trace(mut self, trace: &FlightRecorder) -> ExecOptions {
        self.trace = trace.clone();
        self
    }

    /// Record pipeline stage spans into `spans` (cloned; clones share the
    /// ring). See [`ExecOptions::spans`].
    pub fn with_spans(mut self, spans: &SpanRecorder) -> ExecOptions {
        self.spans = spans.clone();
        self
    }

    /// Flag windows whose completeness falls below `q` as violations in the
    /// provenance layer (builds their post-mortems when tracing).
    pub fn with_required_completeness(mut self, q: f64) -> ExecOptions {
        self.required_completeness = Some(q);
        self
    }

    /// Declare the expected transport-delay regime so the plan analyzer can
    /// check quality-target feasibility before execution. A deny-level
    /// finding (e.g. completeness 1.0 under [`DelayProfile::Unbounded`])
    /// makes [`execute`] refuse the plan.
    pub fn with_delay_profile(mut self, profile: DelayProfile) -> ExecOptions {
        self.delay_profile = Some(profile);
        self
    }

    /// Hint the approximate number of distinct keys on the stream (plan
    /// analyzer only; execution is unaffected).
    pub fn with_expected_keys(mut self, keys: u64) -> ExecOptions {
        self.expected_key_cardinality = Some(keys);
        self
    }

    /// Force the legacy global-staging dataflow for parallel runs (see
    /// [`ExecOptions::global_staging`]). Output is element-identical either
    /// way; this exists for comparison benchmarks and differential tests.
    pub fn with_global_staging(mut self, global: bool) -> ExecOptions {
        self.global_staging = global;
        self
    }

    /// Select the window state backend (see [`ExecOptions::window_state`]).
    /// [`WindowState::Fiba`] is the default; [`WindowState::Legacy`] exists
    /// for differential testing and comparison benchmarks.
    pub fn with_window_state(mut self, state: WindowState) -> ExecOptions {
        self.window_state = state;
        self
    }
}

/// How often (in events) to sample K and buffer occupancy into time series.
const SERIES_SAMPLE_EVERY: u64 = 32;

/// Everything measured over one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Strategy name.
    pub strategy: String,
    /// All first-emission and revision results, in emission order.
    pub results: Vec<WindowResult>,
    /// Per-result latency summary (event-time units; exact percentiles).
    pub latency: Summary,
    /// Result quality vs. the in-order oracle.
    pub quality: QualityReport,
    /// K over event time.
    pub k_series: TimeSeries,
    /// Buffer occupancy over event time.
    pub buffer_series: TimeSeries,
    /// Mean K over the run (time-series mean).
    pub mean_k: f64,
    /// Buffer counters.
    pub buffer: crate::buffer::BufferStats,
    /// Window-operator counters.
    pub window_stats: WindowOpStats,
    /// Wall-clock processing time of the whole run, in microseconds
    /// (generation and oracle scoring excluded).
    pub wall_micros: u128,
    /// Events processed.
    pub events: u64,
    /// Telemetry snapshots collected during the run (empty when telemetry is
    /// disabled). The final snapshot is taken after all windowing work, so
    /// its counters cover the whole run.
    pub snapshots: Vec<Snapshot>,
    /// Per-window provenance records, in quality-report order (empty unless
    /// [`ExecOptions::trace`] is enabled).
    pub provenance: Vec<ProvenanceRecord>,
    /// Post-mortems for every window that violated
    /// [`ExecOptions::required_completeness`] (empty unless tracing with a
    /// target set).
    pub post_mortems: Vec<PostMortem>,
    /// Advisory and warn-level plan diagnostics from the pre-execution
    /// static analysis ([`crate::plan::analyze_plan`]); deny-level findings
    /// never appear here because they abort [`execute`] instead.
    pub plan: Vec<Diagnostic>,
}

impl RunOutput {
    /// Throughput in events per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_micros == 0 {
            0.0
        } else {
            self.events as f64 / (self.wall_micros as f64 / 1e6)
        }
    }
}

/// Strategy output staged for windowing, plus everything measured while
/// draining the strategy. Public as a test surface: the `quill-sim`
/// differential harness stages strategies directly to check watermark
/// monotonicity, conservation and release ordering independently of the
/// windowing layer.
pub struct StagedStream {
    /// Released events and watermarks, in release order.
    pub elements: Vec<StreamElement>,
    /// `(watermark, clock at release)` pairs, in release order.
    pub wm_clock: Vec<(Timestamp, Timestamp)>,
    /// Clock after the last arrival.
    pub final_clock: Timestamp,
    /// K over event time.
    pub k_series: TimeSeries,
    /// Buffer occupancy over event time.
    pub buffer_series: TimeSeries,
    /// Carried out so the caller can `finish()` *after* the windowing work —
    /// the final snapshot then covers executor and result instruments too.
    pub reporter: TelemetryReporter,
}

impl StagedStream {
    /// Clock at which a window ending at `end` was emitted: the clock of the
    /// first released watermark that passed the end; Flush-emitted windows
    /// use the final clock.
    pub fn emission_clock(&self, end: Timestamp) -> Timestamp {
        let at = self.wm_clock.partition_point(|(w, _)| w.raw() < end.raw());
        self.wm_clock.get(at).map_or(self.final_clock, |&(_, c)| c)
    }
}

/// Drain `strategy` over `events`, recording watermark release clocks, the
/// K / buffer-occupancy series, and telemetry ticks. Shared by [`execute`]
/// and [`crate::shared::execute_shared`]: the strategy is inherently
/// sequential (it decides watermarks from arrival order), so its output is
/// staged once and the windowing work — sequential, parallel, or multi-query
/// — runs over the staged stream. Public as a test surface for the
/// `quill-sim` differential harness (see [`StagedStream`]).
pub fn stage_strategy(
    events: &[Event],
    strategy: &mut dyn DisorderControl,
    opts: &ExecOptions,
) -> StagedStream {
    strategy.instrument(&opts.telemetry);
    strategy.attach_trace(&opts.trace);
    strategy.attach_spans(&opts.spans);
    let run_events = opts.telemetry.counter("quill.run.events");
    let mut reporter = TelemetryReporter::new(
        &opts.telemetry,
        ReporterConfig::every_events(opts.snapshot_every_events),
    );

    let mut k_series = TimeSeries::new("k");
    let mut buffer_series = TimeSeries::new("buffered");
    let mut clock = ClockTracker::new();
    let mut elements: Vec<StreamElement> = Vec::with_capacity(events.len() + 1);
    let mut wm_clock: Vec<(Timestamp, Timestamp)> = Vec::new();
    let mut staged: Vec<StreamElement> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        clock.observe(e.ts);
        // quill-lint: allow(no-panic, reason = "observe() on the line above guarantees the clock is set")
        let now = clock.clock().expect("observed at least one event");
        staged.clear();
        strategy.on_event(e.clone(), &mut staged);
        for el in staged.drain(..) {
            if let StreamElement::Watermark(w) = &el {
                wm_clock.push((*w, now));
            }
            elements.push(el);
        }
        run_events.inc();
        reporter.observe_events(1);
        if (i as u64).is_multiple_of(SERIES_SAMPLE_EVERY) {
            let k = strategy.current_k();
            // Cap the oracle's "infinite" K for plottability.
            let k_plot = if k == TimeDelta::MAX {
                f64::NAN
            } else {
                k.as_f64()
            };
            if k_plot.is_finite() {
                k_series.push(now, k_plot);
            }
            buffer_series.push(
                now,
                strategy.buffer_stats().inserted as f64 - strategy.buffer_stats().released as f64,
            );
        }
    }
    staged.clear();
    strategy.finish(&mut staged);
    let final_clock = clock.clock().unwrap_or_default();
    for el in staged.drain(..) {
        if let StreamElement::Watermark(w) = &el {
            wm_clock.push((*w, final_clock));
        }
        elements.push(el);
    }

    StagedStream {
        elements,
        wm_clock,
        final_clock,
        k_series,
        buffer_series,
        reporter,
    }
}

/// Sum window-operator counters across per-shard operator instances.
pub(crate) fn sum_window_stats(ops: &[WindowAggregateOp]) -> WindowOpStats {
    let mut total = WindowOpStats::default();
    for op in ops {
        let s = op.stats();
        total.accepted += s.accepted;
        total.late_dropped += s.late_dropped;
        total.revisions += s.revisions;
        total.windows_emitted += s.windows_emitted;
        total.agg_inserts += s.agg_inserts;
    }
    total
}

/// Execute `query` over `events` (already in arrival order) under
/// `strategy`, per `opts`: sequentially or on the batched keyed-parallel
/// executor, optionally recording telemetry. Quality is scored against the
/// exact in-order oracle.
///
/// The released stream is staged first — recording the clock at each
/// watermark release — then the windowing work runs over the staged stream:
/// through one operator (sequential) or fanned out across
/// [`ParallelConfig::shards`] shard threads (parallel). Per-result latency
/// is reconstructed from the recorded watermark clocks: a window result is
/// emitted at the first watermark that passes its end, which is exactly when
/// interleaved execution would have emitted it. Unkeyed queries
/// (`key_field == None`) still run in parallel mode — every event routes to
/// one shard — but only keyed queries benefit from parallelism.
///
/// With an enabled [`Registry`] in `opts`, the run additionally records
/// `quill.run.events` / `quill.run.results` / `quill.run.late_dropped`
/// counters and a `quill.run.latency` histogram on top of whatever the
/// strategy ([`DisorderControl::instrument`]) and the parallel executor
/// record, and [`RunOutput::snapshots`] carries the periodic and final
/// registry snapshots.
///
/// # Errors
/// Propagates invalid window/aggregate specifications and executor failures.
pub fn execute(
    events: &[Event],
    strategy: &mut dyn DisorderControl,
    query: &QuerySpec,
    opts: &ExecOptions,
) -> Result<RunOutput> {
    // Validate up front so the per-shard operator factory below can't fail.
    WindowAggregateOp::new(
        query.window,
        query.aggregates.clone(),
        query.key_field,
        LatePolicy::Drop,
    )?;
    // Static plan analysis: refuse infeasible plans before any event is
    // buffered; carry the non-fatal findings on the output.
    let plan = vet_plan(query, strategy, opts)?;
    let results_count = opts.telemetry.counter("quill.run.results");
    let latency_hist = opts.telemetry.histogram("quill.run.latency");

    let start = std::time::Instant::now();
    // Shard-local window finalization: for parallel runs (unless the caller
    // pinned global staging) ask the strategy to switch into control-only
    // staging *before* it sees any event. When it agrees, staging below
    // emits events unordered with the identical watermark sequence, and the
    // per-shard operators are wrapped in a `ShardStage` that re-orders each
    // shard's own keys.
    let shard_local = match opts.parallel {
        Some(_) if !opts.global_staging => strategy.split_for_shard_staging(),
        _ => false,
    };
    let mut staged = stage_strategy(events, strategy, opts);
    let elements = std::mem::take(&mut staged.elements);

    let (results, window_stats) = match opts.parallel {
        None => {
            let mut op = WindowAggregateOp::new(
                query.window,
                query.aggregates.clone(),
                query.key_field,
                LatePolicy::Drop,
            )?
            .with_window_state(opts.window_state);
            op.attach_trace(&opts.trace, 0);
            op.attach_spans(&opts.spans, 0);
            let mut results: Vec<WindowResult> = Vec::new();
            for el in elements {
                op.process(el, &mut |o| {
                    if let StreamElement::Event(out_ev) = o {
                        if let Some(r) = WindowResult::from_row(&out_ev.row) {
                            results.push(r);
                        }
                    }
                });
            }
            (results, op.stats())
        }
        Some(config) => {
            // Unkeyed queries route on the (out-of-range ⇒ Null) key so
            // every event lands on one shard.
            let key_field = query.key_field.unwrap_or(usize::MAX);
            let make_window_op = |shard: usize| {
                let mut op = WindowAggregateOp::new(
                    query.window,
                    query.aggregates.clone(),
                    query.key_field,
                    LatePolicy::Drop,
                )
                // quill-lint: allow(no-panic, reason = "the identical WindowAggregateOp::new call was validated at the top of execute()")
                .expect("query validated above")
                .with_window_state(opts.window_state);
                op.attach_trace(&opts.trace, shard as u32);
                op.attach_spans(&opts.spans, shard as u32);
                op
            };
            let (out, ops) = if shard_local {
                let (out, staged_ops) = run_keyed_parallel_traced(
                    elements,
                    key_field,
                    config,
                    &opts.telemetry,
                    &opts.trace,
                    &opts.spans,
                    |shard| {
                        let mut stage = ShardStage::new(make_window_op(shard));
                        stage.attach_spans(&opts.spans, shard as u32);
                        stage
                    },
                )?;
                let ops: Vec<WindowAggregateOp> =
                    staged_ops.into_iter().map(ShardStage::into_inner).collect();
                (out, ops)
            } else {
                run_keyed_parallel_traced(
                    elements,
                    key_field,
                    config,
                    &opts.telemetry,
                    &opts.trace,
                    &opts.spans,
                    make_window_op,
                )?
            };
            let results: Vec<WindowResult> = out
                .iter()
                .filter_map(|el| el.as_event())
                .filter_map(|e| WindowResult::from_row(&e.row))
                .collect();
            (results, sum_window_stats(&ops))
        }
    };
    let wall_micros = start.elapsed().as_micros();

    let mut latency = LatencyRecorder::with_samples();
    let record_deliver = opts.spans.is_enabled();
    for r in &results {
        let emitted_at = staged.emission_clock(r.window.end);
        let lat = emitted_at.delta_since(r.window.end);
        latency_hist.record(lat.raw());
        latency.record(lat);
        if record_deliver {
            // Delivery: the window became complete at its end; the result
            // reached the caller at the clock of the watermark that closed
            // it. This is the end-to-end latency the paper trades against
            // quality, as a per-result span.
            opts.spans
                .record(Stage::Deliver, r.window.end.raw(), emitted_at.raw(), 0);
        }
    }
    results_count.add(results.len() as u64);
    opts.telemetry
        .counter("quill.run.late_dropped")
        .add(window_stats.late_dropped);

    let oracle = oracle_results(events, query.window, &query.aggregates, query.key_field);
    let quality = score(&results, &oracle);
    // Join the flight-recorder ring with the per-window quality outcomes:
    // one provenance record per scored window, and the causal trace slice
    // for every window that missed its completeness target.
    let (provenance, post_mortems) = if opts.trace.is_enabled() {
        let builder = ProvenanceBuilder::new(opts.trace.events());
        let mut provenance = Vec::with_capacity(quality.per_window.len());
        let mut post_mortems = Vec::new();
        for w in &quality.per_window {
            let rec = builder.record_for(
                w.window.start.raw(),
                w.window.end.raw(),
                &w.key,
                w.completeness,
                opts.required_completeness,
            );
            if rec.violated {
                post_mortems.push(builder.post_mortem(&rec));
            }
            provenance.push(rec);
        }
        (provenance, post_mortems)
    } else {
        (Vec::new(), Vec::new())
    };
    // Force the end-of-run snapshot so it covers the executor and result
    // instruments recorded after staging, even when the last periodic tick
    // coincided with the final event.
    if opts.telemetry.is_enabled() {
        staged.reporter.force();
    }
    let snapshots = staged.reporter.finish();

    Ok(RunOutput {
        strategy: strategy.name(),
        latency: latency.summary(),
        quality,
        mean_k: staged.k_series.mean(),
        k_series: staged.k_series,
        buffer_series: staged.buffer_series,
        buffer: strategy.buffer_stats(),
        window_stats,
        wall_micros,
        events: events.len() as u64,
        results,
        snapshots,
        provenance,
        post_mortems,
        plan,
    })
}

/// Run the static plan analysis for one query. Deny-level findings become
/// [`EngineError::PlanRejected`]; the rest are returned for the output.
pub(crate) fn vet_plan(
    query: &QuerySpec,
    strategy: &dyn DisorderControl,
    opts: &ExecOptions,
) -> Result<Vec<Diagnostic>> {
    let diags = analyze_plan(query, &strategy.kind(), opts);
    if let Some(deny) = diags.iter().find(|d| d.severity == Severity::Deny) {
        return Err(EngineError::PlanRejected(format!(
            "[{}] {} (help: {})",
            deny.rule, deny.message, deny.help
        )));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aq::AqKSlack;
    use crate::strategy::{DropAll, FixedKSlack, MpKSlack, OracleBuffer};
    use quill_engine::aggregate::AggregateKind;
    use quill_engine::prelude::{Row, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn disordered_events(n: u64, max_delay: u64, seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let ts = i * 10;
                (ts + rng.gen_range(0..=max_delay), ts)
            })
            .collect();
        arrivals.sort();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(seq, (_, ts))| Event::new(ts, seq as u64, Row::new([Value::Float(ts as f64)])))
            .collect()
    }

    fn sum_query() -> QuerySpec {
        QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")],
            None,
        )
    }

    fn exec_seq(
        events: &[Event],
        strategy: &mut dyn DisorderControl,
        query: &QuerySpec,
    ) -> Result<RunOutput> {
        execute(events, strategy, query, &ExecOptions::sequential())
    }

    #[test]
    fn oracle_strategy_achieves_perfect_quality() {
        let events = disordered_events(2000, 300, 1);
        let mut s = OracleBuffer::new();
        let out = exec_seq(&events, &mut s, &sum_query()).unwrap();
        assert_eq!(out.quality.windows_missing, 0);
        assert_eq!(out.quality.mean_completeness, 1.0);
        assert_eq!(out.quality.mean_rel_error, vec![0.0]);
    }

    #[test]
    fn drop_all_has_zero_latency_and_poor_quality() {
        let events = disordered_events(2000, 300, 2);
        let mut s = DropAll::new();
        let out = exec_seq(&events, &mut s, &sum_query()).unwrap();
        // Near-zero latency modulo clock overshoot: with K=0 the watermark
        // is the clock itself, which can jump past a window end by up to the
        // delay bound when an early-timestamped event is still in flight.
        assert!(out.latency.mean < 50.0, "mean latency {}", out.latency.mean);
        assert!(out.quality.mean_completeness < 0.95);
    }

    #[test]
    fn large_fixed_k_recovers_quality_at_latency_cost() {
        let events = disordered_events(2000, 300, 3);
        let mut lo = FixedKSlack::new(10u64);
        let mut hi = FixedKSlack::new(400u64);
        let out_lo = exec_seq(&events, &mut lo, &sum_query()).unwrap();
        let out_hi = exec_seq(&events, &mut hi, &sum_query()).unwrap();
        assert!(out_hi.quality.mean_completeness > out_lo.quality.mean_completeness);
        assert!(out_hi.latency.mean > out_lo.latency.mean);
        // Delay bound 300 < K=400: zero loss.
        assert_eq!(out_hi.quality.mean_completeness, 1.0);
    }

    #[test]
    fn mp_matches_max_delay_latency() {
        let events = disordered_events(3000, 200, 4);
        let mut s = MpKSlack::new();
        let out = exec_seq(&events, &mut s, &sum_query()).unwrap();
        // MP converges to K ≈ max delay ≈ 200.
        assert!(out.k_series.points().last().unwrap().1 >= 150.0);
        assert!(out.quality.mean_completeness > 0.99);
    }

    #[test]
    fn aq_beats_mp_on_latency_at_similar_quality() {
        let events = disordered_events(20_000, 500, 5);
        let q = 0.95;
        let mut aq = AqKSlack::for_completeness(q);
        let mut mp = MpKSlack::new();
        let out_aq = exec_seq(&events, &mut aq, &sum_query()).unwrap();
        let out_mp = exec_seq(&events, &mut mp, &sum_query()).unwrap();
        assert!(
            out_aq.quality.mean_completeness >= q - 0.03,
            "AQ quality {} below target {q}",
            out_aq.quality.mean_completeness
        );
        assert!(
            out_aq.latency.mean < out_mp.latency.mean,
            "AQ latency {} not below MP {}",
            out_aq.latency.mean,
            out_mp.latency.mean
        );
    }

    #[test]
    fn run_output_accounting_is_consistent() {
        let events = disordered_events(1000, 100, 6);
        let mut s = FixedKSlack::new(50u64);
        let out = exec_seq(&events, &mut s, &sum_query()).unwrap();
        assert_eq!(out.events, 1000);
        let b = out.buffer;
        assert_eq!(b.released + b.late_passed, 1000);
        let w = out.window_stats;
        assert_eq!(w.accepted + w.late_dropped, 1000);
        assert!(out.throughput() > 0.0);
        assert!(out.k_series.is_sorted());
    }

    #[test]
    fn keyed_query_runs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut arrivals: Vec<(u64, u64, i64)> = (0..2000u64)
            .map(|i| (i * 5 + rng.gen_range(0..100), i * 5, (i % 4) as i64))
            .collect();
        arrivals.sort();
        let events: Vec<Event> = arrivals
            .into_iter()
            .enumerate()
            .map(|(seq, (_, ts, k))| {
                Event::new(ts, seq as u64, Row::new([Value::Int(k), Value::Float(1.0)]))
            })
            .collect();
        let query = QuerySpec::new(
            WindowSpec::sliding(200u64, 100u64),
            vec![AggregateSpec::new(AggregateKind::Count, 1, "n")],
            Some(0),
        );
        let mut s = FixedKSlack::new(120u64);
        let out = exec_seq(&events, &mut s, &query).unwrap();
        assert!(out.quality.windows_total > 10);
        assert!(out.quality.mean_completeness > 0.9);
    }

    fn keyed_events(n: u64, seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<(u64, u64, i64)> = (0..n)
            .map(|i| (i * 5 + rng.gen_range(0..150), i * 5, (i % 6) as i64))
            .collect();
        arrivals.sort();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(seq, (_, ts, k))| {
                Event::new(
                    ts,
                    seq as u64,
                    Row::new([Value::Int(k), Value::Float((ts % 37) as f64)]),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let events = keyed_events(3000, 9);
        let query = QuerySpec::new(
            WindowSpec::sliding(200u64, 100u64),
            vec![
                AggregateSpec::new(AggregateKind::Sum, 1, "sum"),
                AggregateSpec::new(AggregateKind::Count, 1, "n"),
            ],
            Some(0),
        );
        let mut s_seq = FixedKSlack::new(160u64);
        let mut s_par = FixedKSlack::new(160u64);
        let seq = exec_seq(&events, &mut s_seq, &query).unwrap();
        let par = execute(
            &events,
            &mut s_par,
            &query,
            &ExecOptions::parallel(ParallelConfig::new(4).with_batch_size(7)),
        )
        .unwrap();

        let sorted = |mut v: Vec<WindowResult>| {
            v.sort_by_key(|r| {
                (
                    r.window.end,
                    r.window.start,
                    quill_engine::value::Key(r.key.clone()),
                )
            });
            v
        };
        assert_eq!(sorted(seq.results.clone()), sorted(par.results.clone()));
        assert_eq!(seq.quality.mean_completeness, par.quality.mean_completeness);
        assert_eq!(seq.window_stats.accepted, par.window_stats.accepted);
        assert_eq!(seq.window_stats.late_dropped, par.window_stats.late_dropped);
        assert_eq!(
            seq.window_stats.windows_emitted,
            par.window_stats.windows_emitted
        );
        // Latency is reconstructed from recorded watermark clocks; the same
        // windows close at the same clocks, so the summaries agree.
        assert!(
            (seq.latency.mean - par.latency.mean).abs() < 1e-6,
            "latency {} vs {}",
            seq.latency.mean,
            par.latency.mean
        );
        assert!(par.throughput() > 0.0);
    }

    #[test]
    fn parallel_runner_handles_unkeyed_queries() {
        let events = disordered_events(1000, 100, 10);
        let mut s = FixedKSlack::new(150u64);
        let out = execute(
            &events,
            &mut s,
            &sum_query(),
            &ExecOptions::parallel(ParallelConfig::new(4)),
        )
        .unwrap();
        assert_eq!(out.quality.mean_completeness, 1.0);
        assert_eq!(out.window_stats.accepted, 1000);
    }

    #[test]
    fn invalid_query_is_rejected() {
        let events = disordered_events(10, 10, 8);
        let bad = QuerySpec::new(WindowSpec::tumbling(0u64), vec![], None);
        let mut s = DropAll::new();
        assert!(exec_seq(&events, &mut s, &bad).is_err());
    }

    #[test]
    fn builder_builds_validated_queries() {
        let q = QuerySpec::builder()
            .window(WindowSpec::sliding(200u64, 100u64))
            .aggregate(AggregateKind::Sum, 1, "sum")
            .aggregate(AggregateKind::Count, 1, "n")
            .key_field(0)
            .build()
            .unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.key_field, Some(0));

        // Missing window and missing aggregates are both rejected.
        assert!(QuerySpec::builder()
            .aggregate(AggregateKind::Sum, 0, "sum")
            .build()
            .is_err());
        assert!(QuerySpec::builder()
            .window(WindowSpec::tumbling(100u64))
            .build()
            .is_err());
        // Invalid window parameters propagate.
        assert!(QuerySpec::builder()
            .window(WindowSpec::tumbling(0u64))
            .aggregate(AggregateKind::Sum, 0, "sum")
            .build()
            .is_err());
    }

    #[test]
    fn telemetry_snapshots_cover_the_whole_run() {
        let events = disordered_events(2000, 300, 11);
        let telemetry = quill_telemetry::Registry::new();
        let mut s = FixedKSlack::new(350u64);
        let out = execute(
            &events,
            &mut s,
            &sum_query(),
            &ExecOptions::sequential()
                .with_telemetry(&telemetry)
                .with_snapshot_every(500),
        )
        .unwrap();
        // Periodic snapshots at 500/1000/1500/2000 events plus nothing extra
        // at finish (2000 coincides with the last tick).
        assert!(out.snapshots.len() >= 4, "got {}", out.snapshots.len());
        let last = out.snapshots.last().unwrap();
        assert_eq!(last.counter("quill.run.events"), 2000);
        assert_eq!(last.counter("quill.run.results"), out.results.len() as u64);
        assert_eq!(
            last.counter("quill.buffer.inserted") + last.counter("quill.buffer.late_passed"),
            2000
        );
        assert_eq!(
            last.counter("quill.run.late_dropped"),
            out.window_stats.late_dropped
        );
    }

    #[test]
    fn disabled_telemetry_produces_no_snapshots() {
        let events = disordered_events(500, 100, 12);
        let mut s = FixedKSlack::new(150u64);
        let out = execute(
            &events,
            &mut s,
            &sum_query(),
            &ExecOptions::sequential().with_snapshot_every(100),
        )
        .unwrap();
        assert!(out.snapshots.is_empty());
    }

    #[test]
    fn traced_run_yields_provenance_and_post_mortems() {
        use quill_telemetry::trace::TraceKind;
        let mk = |ts: u64, seq: u64| Event::new(ts, seq, Row::new([Value::Float(1.0)]));
        let mut events: Vec<Event> = (0..20u64).map(|i| mk(i * 10, i)).collect();
        // One straggler for window [0,100), arriving after the clock passed
        // 190 — with K=0 it is late at the buffer and dropped at the window.
        events.push(mk(5, 20));
        let trace = FlightRecorder::with_default_capacity();
        let mut s = DropAll::new();
        let out = execute(
            &events,
            &mut s,
            &sum_query(),
            &ExecOptions::sequential()
                .with_trace(&trace)
                .with_required_completeness(1.0),
        )
        .unwrap();
        assert_eq!(out.provenance.len(), out.quality.per_window.len());
        assert!(out.provenance.iter().all(|r| r.finalize_seq.is_some()));
        let violated: Vec<&ProvenanceRecord> =
            out.provenance.iter().filter(|r| r.violated).collect();
        assert_eq!(violated.len(), 1);
        let v = violated[0];
        assert_eq!((v.start, v.end), (0, 100));
        assert_eq!(v.late_arrivals, 1);
        assert_eq!(v.dropped, 1);
        assert!(v.achieved_completeness < 1.0);
        assert_eq!(out.post_mortems.len(), 1);
        let pm = &out.post_mortems[0];
        assert_eq!((pm.record.start, pm.record.end), (0, 100));
        assert!(pm.slice.iter().any(
            |t| matches!(&t.kind, TraceKind::LateDrop { windows, .. } if windows.contains(&(0, 100)))
        ));
        assert!(pm
            .slice
            .iter()
            .any(|t| matches!(t.kind, TraceKind::WindowFinalize { .. })));
    }

    #[test]
    fn disabled_trace_produces_no_provenance() {
        let events = disordered_events(500, 100, 14);
        let mut s = FixedKSlack::new(20u64);
        let out = execute(
            &events,
            &mut s,
            &sum_query(),
            &ExecOptions::sequential().with_required_completeness(1.0),
        )
        .unwrap();
        assert!(out.provenance.is_empty());
        assert!(out.post_mortems.is_empty());
    }

    #[test]
    fn parallel_traced_run_assembles_provenance_across_shards() {
        let events = keyed_events(3000, 15);
        let query = QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")],
            Some(0),
        );
        let trace = FlightRecorder::with_default_capacity();
        let mut s = FixedKSlack::new(30u64); // well under the 150 delay bound
        let out = execute(
            &events,
            &mut s,
            &query,
            &ExecOptions::parallel(ParallelConfig::new(4))
                .with_trace(&trace)
                .with_required_completeness(0.99),
        )
        .unwrap();
        assert_eq!(out.provenance.len(), out.quality.per_window.len());
        assert!(
            out.provenance.iter().any(|r| r.violated),
            "K=30 under delay bound 150 must lose events somewhere"
        );
        assert_eq!(
            out.post_mortems.len(),
            out.provenance.iter().filter(|r| r.violated).count()
        );
        // Per-window dropped counts come from shard-tagged LateDrop events;
        // their total matches the operator counters.
        let dropped: u64 = out.provenance.iter().map(|r| r.dropped).sum();
        assert!(dropped > 0);
    }

    #[test]
    fn spanned_run_covers_pipeline_stages_and_reconciles_latency() {
        let events = keyed_events(3000, 16);
        let query = QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")],
            Some(0),
        );
        let spans = SpanRecorder::with_default_capacity();
        let telemetry = Registry::new();
        spans.instrument(&telemetry);
        let mut s = FixedKSlack::new(160u64);
        let out = execute(
            &events,
            &mut s,
            &query,
            &ExecOptions::parallel(ParallelConfig::new(4).with_deterministic(true))
                .with_telemetry(&telemetry)
                .with_spans(&spans),
        )
        .unwrap();
        let recorded = spans.spans();
        // Shard-local finalization exercises the full in-process pipeline:
        // buffer residency (control-only), routing, shard staging, window
        // finalization, merge, delivery.
        for stage in [
            Stage::BufferResidency,
            Stage::Route,
            Stage::ShardStage,
            Stage::WindowFinalize,
            Stage::Merge,
            Stage::Deliver,
        ] {
            assert!(
                recorded.iter().any(|sp| sp.stage == stage),
                "missing {stage} spans"
            );
        }
        // One Deliver span per result, and their durations are exactly the
        // per-result latencies the summary was built from.
        let deliver: Vec<u64> = recorded
            .iter()
            .filter(|sp| sp.stage == Stage::Deliver)
            .map(|sp| sp.duration())
            .collect();
        assert_eq!(deliver.len(), out.results.len());
        let mean = deliver.iter().sum::<u64>() as f64 / deliver.len() as f64;
        assert!(
            (mean - out.latency.mean).abs() < 1e-9,
            "span-derived mean {mean} vs summary {}",
            out.latency.mean
        );
        // Attribution histograms landed in the registry.
        let snap = telemetry.snapshot();
        let h = snap
            .histograms
            .get("quill.span.deliver")
            .expect("deliver histogram");
        assert_eq!(h.count, out.results.len() as u64);
        assert!((h.mean - out.latency.mean).abs() < 1e-9);
    }

    #[test]
    fn disabled_spans_leave_run_output_unchanged() {
        let events = keyed_events(1500, 17);
        let query = QuerySpec::new(
            WindowSpec::tumbling(100u64),
            vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")],
            Some(0),
        );
        let mut s1 = FixedKSlack::new(160u64);
        let mut s2 = FixedKSlack::new(160u64);
        let opts = ExecOptions::parallel(ParallelConfig::new(2).with_deterministic(true));
        let plain = execute(&events, &mut s1, &query, &opts).unwrap();
        let spans = SpanRecorder::with_default_capacity();
        let spanned = execute(&events, &mut s2, &query, &opts.with_spans(&spans)).unwrap();
        assert_eq!(plain.results, spanned.results);
        assert_eq!(
            plain.quality.mean_completeness,
            spanned.quality.mean_completeness
        );
        assert!(!spans.is_empty());
    }
}
