//! Online estimation of the tuple-delay distribution.
//!
//! [`DelayEstimator`] maintains a sliding sample of the most recent `W`
//! delays in a sorted multiset, supporting O(log n) insertion/eviction and
//! quantile queries by cumulative walk. The estimator is the open-loop half
//! of AQ-K-slack: for a completeness target `q`, the smallest slack that
//! meets it in expectation is the `q`-quantile of the delay distribution,
//! `K̂ = F⁻¹(q)` — because a tuple is reflected in its window's first result
//! iff its delay is at most the slack in force when it arrived.

use quill_engine::prelude::TimeDelta;
use quill_metrics::LogHistogram;
use std::collections::{BTreeMap, VecDeque};

/// Which delay-distribution estimator AQ-K-slack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Exact quantiles over a sliding sample of the most recent delays
    /// (O(W) memory, O(log W) updates) — the default.
    SlidingWindow,
    /// Approximate quantiles from a log-bucketed histogram with periodic
    /// exponential decay (O(1) memory regardless of tail length; quantile
    /// relative error bounded by the precision). The space-frugal
    /// alternative the R-F8 ablation compares.
    DecayingHistogram {
        /// Sub-bucket precision bits (quantile error ≤ `2^-bits`).
        precision_bits: u32,
        /// Halve all counts every this many observations (the effective
        /// memory horizon is ~`2 × decay_every`).
        decay_every: u64,
    },
}

/// A delay estimator of either kind, behind one interface.
#[derive(Debug, Clone)]
pub enum DistEstimator {
    /// Exact sliding-window estimator.
    Exact(DelayEstimator),
    /// Decaying-histogram estimator.
    Histogram(HistogramEstimator),
}

impl DistEstimator {
    /// Build from a kind descriptor (`capacity` sizes the sliding window).
    pub fn new(kind: EstimatorKind, capacity: usize) -> DistEstimator {
        match kind {
            EstimatorKind::SlidingWindow => DistEstimator::Exact(DelayEstimator::new(capacity)),
            EstimatorKind::DecayingHistogram {
                precision_bits,
                decay_every,
            } => DistEstimator::Histogram(HistogramEstimator::new(precision_bits, decay_every)),
        }
    }

    /// Observe one delay.
    pub fn observe(&mut self, d: TimeDelta) {
        match self {
            DistEstimator::Exact(e) => e.observe(d),
            DistEstimator::Histogram(h) => h.observe(d),
        }
    }

    /// The `q`-quantile of the estimated distribution.
    pub fn quantile(&self, q: f64) -> Option<TimeDelta> {
        match self {
            DistEstimator::Exact(e) => e.quantile(q),
            DistEstimator::Histogram(h) => h.quantile(q),
        }
    }

    /// Largest delay ever observed.
    pub fn max_ever(&self) -> TimeDelta {
        match self {
            DistEstimator::Exact(e) => e.max_ever(),
            DistEstimator::Histogram(h) => h.max_ever(),
        }
    }

    /// Estimated fraction of delays `<= d` (the open-loop completeness a
    /// slack of `d` would buy).
    pub fn cdf(&self, d: TimeDelta) -> f64 {
        match self {
            DistEstimator::Exact(e) => e.cdf(d),
            DistEstimator::Histogram(h) => h.cdf(d),
        }
    }
}

/// O(1)-memory delay estimator: a log-bucketed histogram whose counts are
/// halved every `decay_every` observations, so old regimes fade with an
/// exponential horizon instead of a hard window edge.
#[derive(Debug, Clone)]
pub struct HistogramEstimator {
    hist: LogHistogram,
    decay_every: u64,
    since_decay: u64,
    max_ever: u64,
}

impl HistogramEstimator {
    /// Build with the given precision and decay interval (clamped ≥ 1).
    pub fn new(precision_bits: u32, decay_every: u64) -> HistogramEstimator {
        HistogramEstimator {
            hist: LogHistogram::new(precision_bits),
            decay_every: decay_every.max(1),
            since_decay: 0,
            max_ever: 0,
        }
    }

    /// Observe one delay.
    pub fn observe(&mut self, d: TimeDelta) {
        self.hist.record(d.raw());
        self.max_ever = self.max_ever.max(d.raw());
        self.since_decay += 1;
        if self.since_decay >= self.decay_every {
            self.hist.halve();
            self.since_decay = 0;
        }
    }

    /// Approximate `q`-quantile.
    pub fn quantile(&self, q: f64) -> Option<TimeDelta> {
        self.hist.quantile(q).map(TimeDelta)
    }

    /// Largest delay ever observed.
    pub fn max_ever(&self) -> TimeDelta {
        TimeDelta(self.max_ever)
    }

    /// Current (decayed) observation mass.
    pub fn mass(&self) -> u64 {
        self.hist.count()
    }

    /// Fraction of (decayed) observations `<= d`.
    pub fn cdf(&self, d: TimeDelta) -> f64 {
        self.hist.cdf(d.raw())
    }
}

/// Sliding-window delay distribution estimator.
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    capacity: usize,
    window: VecDeque<u64>,
    sorted: BTreeMap<u64, usize>,
    total_seen: u64,
    /// Largest delay ever observed (not just within the window).
    max_ever: u64,
}

impl DelayEstimator {
    /// Estimator over the most recent `capacity` delays (>= 1).
    pub fn new(capacity: usize) -> DelayEstimator {
        DelayEstimator {
            capacity: capacity.max(1),
            window: VecDeque::with_capacity(capacity.max(1)),
            sorted: BTreeMap::new(),
            total_seen: 0,
            max_ever: 0,
        }
    }

    /// Observe one delay.
    pub fn observe(&mut self, d: TimeDelta) {
        let d = d.raw();
        self.total_seen += 1;
        self.max_ever = self.max_ever.max(d);
        if self.window.len() == self.capacity {
            let old = self
                .window
                .pop_front()
                .expect("window non-empty at capacity");
            match self.sorted.get_mut(&old) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.sorted.remove(&old);
                }
            }
        }
        self.window.push_back(d);
        *self.sorted.entry(d).or_insert(0) += 1;
    }

    /// Number of delays currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no delays were observed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Total delays observed over the estimator's lifetime.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Largest delay ever observed.
    pub fn max_ever(&self) -> TimeDelta {
        TimeDelta(self.max_ever)
    }

    /// Largest delay inside the current window.
    pub fn max_in_window(&self) -> Option<TimeDelta> {
        self.sorted.keys().next_back().map(|&d| TimeDelta(d))
    }

    /// The empirical `q`-quantile of the windowed delay distribution: the
    /// smallest delay `d` such that at least `⌈q·n⌉` samples are `<= d`.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<TimeDelta> {
        let n = self.window.len();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let mut acc = 0usize;
        for (&d, &c) in &self.sorted {
            acc += c;
            if acc >= target {
                return Some(TimeDelta(d));
            }
        }
        self.max_in_window()
    }

    /// Empirical CDF: fraction of windowed delays `<= d`.
    pub fn cdf(&self, d: TimeDelta) -> f64 {
        let n = self.window.len();
        if n == 0 {
            return 1.0;
        }
        let d = d.raw();
        let cnt: usize = self.sorted.range(..=d).map(|(_, &c)| c).sum();
        cnt as f64 / n as f64
    }

    /// Mean of the windowed delays (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().map(|&d| d as f64).sum::<f64>() / self.window.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(delays: &[u64], cap: usize) -> DelayEstimator {
        let mut e = DelayEstimator::new(cap);
        for &d in delays {
            e.observe(TimeDelta(d));
        }
        e
    }

    #[test]
    fn quantile_of_small_sample() {
        let e = est(&[10, 20, 30, 40, 50], 100);
        assert_eq!(e.quantile(0.0), Some(TimeDelta(10)));
        assert_eq!(e.quantile(0.2), Some(TimeDelta(10)));
        assert_eq!(e.quantile(0.5), Some(TimeDelta(30)));
        assert_eq!(e.quantile(0.9), Some(TimeDelta(50)));
        assert_eq!(e.quantile(1.0), Some(TimeDelta(50)));
    }

    #[test]
    fn quantile_respects_duplicates() {
        let e = est(&[5, 5, 5, 5, 100], 100);
        assert_eq!(e.quantile(0.8), Some(TimeDelta(5)));
        assert_eq!(e.quantile(0.81), Some(TimeDelta(100)));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut e = DelayEstimator::new(3);
        for d in [1, 2, 3, 100, 100, 100] {
            e.observe(TimeDelta(d));
        }
        assert_eq!(e.len(), 3);
        // Window is now [100, 100, 100].
        assert_eq!(e.quantile(0.01), Some(TimeDelta(100)));
        assert_eq!(e.max_ever(), TimeDelta(100));
        assert_eq!(e.total_seen(), 6);
    }

    #[test]
    fn eviction_keeps_multiset_consistent() {
        let mut e = DelayEstimator::new(4);
        for d in [7, 7, 7, 7, 7, 7, 9] {
            e.observe(TimeDelta(d));
        }
        // Window: [7, 7, 7, 9].
        assert_eq!(e.cdf(TimeDelta(7)), 0.75);
        assert_eq!(e.cdf(TimeDelta(9)), 1.0);
        assert_eq!(e.cdf(TimeDelta(6)), 0.0);
    }

    #[test]
    fn cdf_and_quantile_are_inverse_ish() {
        let delays: Vec<u64> = (0..1000).map(|i| (i * 7919) % 4096).collect();
        let e = est(&delays, 2000);
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            let k = e.quantile(q).unwrap();
            assert!(e.cdf(k) >= q, "cdf(F^-1(q)) >= q violated at {q}");
            // One sample less must undershoot.
            if k.raw() > 0 {
                assert!(e.cdf(TimeDelta(k.raw() - 1)) < q + 1e-9);
            }
        }
    }

    #[test]
    fn empty_estimator() {
        let e = DelayEstimator::new(10);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.cdf(TimeDelta(5)), 1.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max_in_window(), None);
    }

    #[test]
    fn mean_tracks_window_only() {
        let mut e = DelayEstimator::new(2);
        e.observe(TimeDelta(1000));
        e.observe(TimeDelta(10));
        e.observe(TimeDelta(20));
        assert_eq!(e.mean(), 15.0);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut e = DelayEstimator::new(0);
        e.observe(TimeDelta(5));
        e.observe(TimeDelta(9));
        assert_eq!(e.len(), 1);
        assert_eq!(e.quantile(0.5), Some(TimeDelta(9)));
    }
}

#[cfg(test)]
mod hist_tests {
    use super::*;

    #[test]
    fn histogram_estimator_tracks_quantiles_of_stationary_stream() {
        // Decay interval beyond the test length: isolates bucket precision
        // (recency weighting is covered by the forgetting test below).
        let mut h = HistogramEstimator::new(7, 1_000_000);
        let mut e = DelayEstimator::new(100_000);
        for i in 0..10_000u64 {
            let d = TimeDelta((i * 7919) % 5_000);
            h.observe(d);
            e.observe(d);
        }
        for &q in &[0.5, 0.9, 0.99] {
            let approx = h.quantile(q).unwrap().as_f64();
            let exact = e.quantile(q).unwrap().as_f64();
            let rel = (approx - exact).abs() / exact.max(1.0);
            assert!(rel < 0.05, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn histogram_estimator_forgets_old_regime() {
        let mut h = HistogramEstimator::new(7, 100);
        for _ in 0..500 {
            h.observe(TimeDelta(10_000)); // stressed regime
        }
        for _ in 0..2_000 {
            h.observe(TimeDelta(10)); // calm regime, 20 decay periods later
        }
        assert!(
            h.quantile(0.99).unwrap() <= TimeDelta(20),
            "old regime not forgotten: p99 = {:?}",
            h.quantile(0.99)
        );
        // max_ever is a lifetime statistic, unaffected by decay.
        assert_eq!(h.max_ever(), TimeDelta(10_000));
    }

    #[test]
    fn dist_estimator_dispatch() {
        let mut exact = DistEstimator::new(EstimatorKind::SlidingWindow, 16);
        let mut hist = DistEstimator::new(
            EstimatorKind::DecayingHistogram {
                precision_bits: 7,
                decay_every: 64,
            },
            16,
        );
        for d in [5u64, 10, 20, 40] {
            exact.observe(TimeDelta(d));
            hist.observe(TimeDelta(d));
        }
        assert_eq!(exact.quantile(1.0), Some(TimeDelta(40)));
        assert_eq!(hist.quantile(1.0), Some(TimeDelta(40)));
        assert_eq!(exact.max_ever(), TimeDelta(40));
        assert_eq!(hist.max_ever(), TimeDelta(40));
    }
}
