//! Property-based tests of measurement primitives: histogram error bounds,
//! parallel-merge equivalence, quality-scoring identities.

use proptest::prelude::*;
use quill_engine::aggregate::{AggregateKind, AggregateSpec};
use quill_engine::prelude::*;
use quill_metrics::quality_eval::{oracle_results, score};
use quill_metrics::{ecdf_sorted, percentile_sorted, LogHistogram, StreamingStats, Summary};

proptest! {
    #[test]
    fn histogram_quantile_relative_error_is_bounded(
        values in prop::collection::vec(1u64..1_000_000_000, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let mut h = LogHistogram::new(7);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[target - 1];
        let approx = h.quantile(q).expect("non-empty") as f64;
        // Bucket precision 7 bits → ≤ 2^-7 relative error, use 1% headroom.
        let rel = (approx - exact as f64).abs() / exact as f64;
        prop_assert!(rel <= 0.01 + 1e-9, "q={q}: approx {approx} exact {exact} rel {rel}");
    }

    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = LogHistogram::new(6);
        let mut hb = LogHistogram::new(6);
        let mut hu = LogHistogram::new(6);
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.quantile(0.5), hu.quantile(0.5));
        prop_assert!((ha.mean() - hu.mean()).abs() < 1e-9);
    }

    #[test]
    fn streaming_merge_matches_sequential(
        a in prop::collection::vec(-1e6f64..1e6, 0..100),
        b in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut whole = StreamingStats::new();
        let mut pa = StreamingStats::new();
        let mut pb = StreamingStats::new();
        for &x in &a {
            whole.push(x);
            pa.push(x);
        }
        for &x in &b {
            whole.push(x);
            pb.push(x);
        }
        pa.merge(&pb);
        prop_assert_eq!(pa.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((pa.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((pa.variance() - whole.variance()).abs() / whole.variance().max(1.0) < 1e-6);
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut sample in prop::collection::vec(-1e9f64..1e9, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        sample.sort_by(|a, b| a.total_cmp(b));
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.total_cmp(b));
        let mut last = f64::NEG_INFINITY;
        for q in sorted_qs {
            let p = percentile_sorted(&sample, q);
            prop_assert!(p >= last);
            prop_assert!(p >= sample[0] && p <= *sample.last().expect("non-empty"));
            last = p;
        }
        // ECDF at the interpolated q-th percentile covers at least the
        // floor-rank mass: percentile_sorted(q) >= sample[floor(q*(n-1))],
        // so at least floor(q*(n-1)) + 1 samples lie at or below it. (It can
        // be *less* than q·n — interpolation sits between sample points.)
        let n = sample.len();
        let p90 = percentile_sorted(&sample, 0.9);
        let floor_rank = (0.9 * (n - 1) as f64).floor() as usize;
        prop_assert!(
            ecdf_sorted(&sample, p90) >= (floor_rank + 1) as f64 / n as f64 - 1e-9
        );
    }

    #[test]
    fn summary_is_internally_consistent(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&sample);
        prop_assert_eq!(s.count as usize, sample.len());
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert!(s.stddev >= 0.0);
    }

    #[test]
    fn scoring_a_run_against_itself_is_perfect(
        tss in prop::collection::vec((0u64..5_000, -100.0f64..100.0), 1..100),
        window in 10u64..500,
    ) {
        let events: Vec<Event> = tss
            .iter()
            .enumerate()
            .map(|(i, &(t, v))| Event::new(t, i as u64, Row::new([Value::Float(v)])))
            .collect();
        let aggs = vec![
            AggregateSpec::new(AggregateKind::Sum, 0, "sum"),
            AggregateSpec::new(AggregateKind::Median, 0, "median"),
        ];
        let oracle = oracle_results(&events, WindowSpec::tumbling(window), &aggs, None);
        let report = score(&oracle, &oracle);
        prop_assert_eq!(report.windows_missing, 0);
        prop_assert_eq!(report.mean_completeness, 1.0);
        for e in &report.mean_rel_error {
            prop_assert!(*e < 1e-9);
        }
    }

    #[test]
    fn dropping_results_only_lowers_quality(
        tss in prop::collection::vec(0u64..5_000, 2..100),
        window in 10u64..500,
        keep_fraction in 0.0f64..1.0,
    ) {
        let events: Vec<Event> = tss
            .iter()
            .enumerate()
            .map(|(i, &t)| Event::new(t, i as u64, Row::new([Value::Float(1.0)])))
            .collect();
        let aggs = vec![AggregateSpec::new(AggregateKind::Count, 0, "n")];
        let oracle = oracle_results(&events, WindowSpec::tumbling(window), &aggs, None);
        let keep = ((oracle.len() as f64) * keep_fraction) as usize;
        let partial: Vec<_> = oracle.iter().take(keep).cloned().collect();
        let full = score(&oracle, &oracle);
        let cut = score(&partial, &oracle);
        prop_assert!(cut.mean_completeness <= full.mean_completeness + 1e-12);
        prop_assert_eq!(cut.windows_missing as usize, oracle.len() - keep);
    }
}
