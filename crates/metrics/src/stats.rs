//! Scalar statistics: streaming moments and batch summaries.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford) with min/max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        StreamingStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary of a sample: moments plus exact percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// An all-zero summary for an empty sample.
    pub fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            stddev: 0.0,
            min: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        }
    }

    /// Summarize a sample (copied and sorted internally).
    pub fn of(sample: &[f64]) -> Summary {
        if sample.is_empty() {
            return Summary::empty();
        }
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut s = StreamingStats::new();
        for &x in sample {
            s.push(x);
        }
        Summary {
            count: s.count(),
            mean: s.mean(),
            stddev: s.stddev(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// p-th percentile (0..=1) of an ascending-sorted slice, with linear
/// interpolation between ranks. Returns 0 for an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi.min(sorted.len() - 1)] - sorted[lo]) * frac
}

/// Empirical CDF value `P(X <= x)` over an ascending-sorted sample.
pub fn ecdf_sorted(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    // partition_point gives the count of elements <= x.
    let cnt = sorted.partition_point(|&v| v <= x);
    cnt as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_streaming_stats() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert!((a.mean() - before.mean()).abs() < 1e-12);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 40.0);
        assert!((percentile_sorted(&sorted, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(Summary::of(&[]), Summary::empty());
    }

    #[test]
    fn ecdf_counts_inclusive() {
        let sorted = [1.0, 2.0, 2.0, 5.0];
        assert_eq!(ecdf_sorted(&sorted, 0.5), 0.0);
        assert_eq!(ecdf_sorted(&sorted, 2.0), 0.75);
        assert_eq!(ecdf_sorted(&sorted, 10.0), 1.0);
        assert_eq!(ecdf_sorted(&[], 1.0), 1.0);
    }
}
