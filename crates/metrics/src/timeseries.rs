//! Time-series recording for adaptivity plots (K(t), quality(t), ...).

use quill_engine::prelude::Timestamp;
use serde::{Deserialize, Serialize};

/// A named sequence of `(event time, value)` points.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Series name (used as the CSV column header).
    pub name: String,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point. Timestamps should be non-decreasing; out-of-order
    /// appends are kept but flagged by [`TimeSeries::is_sorted`].
    pub fn push(&mut self, t: Timestamp, v: f64) {
        self.points.push((t.raw(), v));
    }

    /// The raw points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether timestamps are non-decreasing.
    pub fn is_sorted(&self) -> bool {
        self.points.windows(2).all(|p| p[0].0 <= p[1].0)
    }

    /// Mean of the values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Downsample to at most `max_points` by averaging fixed-size runs of
    /// consecutive points (keeps the time of each run's last point).
    /// Returns a copy; the original is untouched.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let chunk = self.points.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        for run in self.points.chunks(chunk) {
            let t = run.last().expect("non-empty chunk").0;
            let mean = run.iter().map(|&(_, v)| v).sum::<f64>() / run.len() as f64;
            out.points.push((t, mean));
        }
        out
    }

    /// Align several series on their union of timestamps and render CSV:
    /// `time,<name1>,<name2>,...` with empty cells where a series has no
    /// point at that time.
    pub fn to_csv(series: &[&TimeSeries]) -> String {
        use std::collections::BTreeMap;
        let mut rows: BTreeMap<u64, Vec<Option<f64>>> = BTreeMap::new();
        for (i, s) in series.iter().enumerate() {
            for &(t, v) in &s.points {
                rows.entry(t).or_insert_with(|| vec![None; series.len()])[i] = Some(v);
            }
        }
        let mut out = String::from("time");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for (t, vals) in rows {
            out.push_str(&t.to_string());
            for v in vals {
                out.push(',');
                if let Some(v) = v {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut s = TimeSeries::new("k");
        s.push(Timestamp(1), 10.0);
        s.push(Timestamp(2), 20.0);
        assert_eq!(s.len(), 2);
        assert!(s.is_sorted());
        assert_eq!(s.mean(), 15.0);
    }

    #[test]
    fn detects_unsorted() {
        let mut s = TimeSeries::new("k");
        s.push(Timestamp(5), 1.0);
        s.push(Timestamp(3), 1.0);
        assert!(!s.is_sorted());
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let mut s = TimeSeries::new("k");
        for i in 0..1000u64 {
            s.push(Timestamp(i), i as f64);
        }
        let d = s.downsample(10);
        assert!(d.len() <= 10);
        assert!((d.mean() - s.mean()).abs() < 51.0);
        // No-op cases.
        assert_eq!(s.downsample(0).len(), 1000);
        assert_eq!(s.downsample(2000).len(), 1000);
    }

    #[test]
    fn csv_aligns_multiple_series() {
        let mut a = TimeSeries::new("a");
        a.push(Timestamp(1), 1.0);
        a.push(Timestamp(3), 3.0);
        let mut b = TimeSeries::new("b");
        b.push(Timestamp(2), 2.0);
        b.push(Timestamp(3), 30.0);
        let csv = TimeSeries::to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "1,1,");
        assert_eq!(lines[2], "2,,2");
        assert_eq!(lines[3], "3,3,30");
    }

    #[test]
    fn empty_series_mean_is_zero() {
        let s = TimeSeries::new("x");
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
        assert!(s.is_sorted());
    }
}
