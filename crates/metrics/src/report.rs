//! Table rendering and experiment-result persistence.
//!
//! Every experiment in `quill-bench` produces a [`Table`] (printed as
//! markdown, written as CSV) so the reconstructed paper tables/figures can
//! be regenerated and diffed run over run.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular table of stringified cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (rendered as a caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table with headers.
    pub fn new(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded with empty cells, long rows
    /// truncated, so the table stays rectangular.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = impl Into<String>>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavored markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:w$} |", w = w);
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180 style quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float compactly for table cells (3 significant decimals,
/// trailing zeros trimmed).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned_and_rectangular() {
        let mut t = Table::new("Demo", ["name", "value"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b"]); // short row padded
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| b     |       |"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("", ["a", "b"]);
        t.push_row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("quill_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new("t", ["h"]);
        t.push_row(["v"]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "h\nv\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.4567), "3.457");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(1.2000), "1.2");
    }
}
