//! Ground-truth oracle and result-quality scoring.
//!
//! The *oracle* computes the exact window results a query would produce if
//! the stream arrived perfectly in order (equivalently: with an infinite
//! disorder buffer). Quality of an actual run is scored per window against
//! the oracle:
//!
//! * **completeness** — fraction of the window's true tuples that the
//!   emitted (first, non-revised) result reflected;
//! * **relative error** — per aggregate, `|produced − true| / max(|true|, ε)`.
//!
//! Windows the run never emitted (e.g. every tuple arrived too late) score
//! completeness 0. Revisions are scored separately: the quality-latency
//! trade-off studied here concerns the *initial* result.

use quill_engine::aggregate::AggregateSpec;
use quill_engine::event::Event;
use quill_engine::operator::WindowResult;
use quill_engine::value::{Key, Value};
use quill_engine::window::{Window, WindowSpec};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Division guard for relative error against near-zero true values.
pub const REL_ERROR_EPSILON: f64 = 1e-9;

/// Compute exact in-order results for a windowed aggregation query.
///
/// Groups `events` by optional key field and every window their timestamps
/// fall into, then evaluates each [`AggregateSpec`]'s reference
/// implementation. Results are ordered by (window end, window start, key),
/// matching the engine's emission order.
pub fn oracle_results(
    events: &[Event],
    spec: WindowSpec,
    aggs: &[AggregateSpec],
    key_field: Option<usize>,
) -> Vec<WindowResult> {
    let mut groups: BTreeMap<
        (
            quill_engine::time::Timestamp,
            quill_engine::time::Timestamp,
            Key,
        ),
        Vec<&Event>,
    > = BTreeMap::new();
    for e in events {
        let key = match key_field {
            Some(i) => Key(e.row.get(i).clone()),
            None => Key(Value::Null),
        };
        for w in spec.assign(e.ts) {
            groups
                .entry((w.end, w.start, key.clone()))
                .or_default()
                .push(e);
        }
    }
    groups
        .into_iter()
        .map(|((end, start, key), evs)| {
            let aggregates = aggs
                .iter()
                .map(|a| {
                    let rows: Vec<_> = evs.iter().map(|e| (e.ts, &e.row)).collect();
                    a.compute_rows(&rows)
                })
                .collect();
            WindowResult {
                key: key.0,
                window: Window::new(start, end),
                count: evs.len() as u64,
                revision: 0,
                aggregates,
            }
        })
        .collect()
}

/// Per-window quality score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowQuality {
    /// The scored window.
    pub window: Window,
    /// Stringified key (for reporting).
    pub key: String,
    /// `produced.count / true.count`, clamped to `[0, 1]`; 0 if the window
    /// was never emitted.
    pub completeness: f64,
    /// Relative error per aggregate; `None` where either side is
    /// non-numeric. All `1.0` (total error) for missing windows.
    pub rel_errors: Vec<Option<f64>>,
    /// Whether the run emitted this window at all.
    pub emitted: bool,
}

/// Aggregate quality report over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Number of true (oracle) windows.
    pub windows_total: u64,
    /// True windows the run never emitted.
    pub windows_missing: u64,
    /// Mean per-window completeness (missing windows count as 0).
    pub mean_completeness: f64,
    /// Minimum per-window completeness.
    pub min_completeness: f64,
    /// Mean relative error per aggregate (over windows where defined).
    pub mean_rel_error: Vec<f64>,
    /// Max relative error per aggregate.
    pub max_rel_error: Vec<f64>,
    /// Per-window scores, in oracle order (kept for time-series plots).
    pub per_window: Vec<WindowQuality>,
}

impl QualityReport {
    /// Fraction of windows whose completeness fell below `target`.
    pub fn violation_rate(&self, target: f64) -> f64 {
        if self.per_window.is_empty() {
            return 0.0;
        }
        let viol = self
            .per_window
            .iter()
            .filter(|w| w.completeness < target)
            .count();
        viol as f64 / self.per_window.len() as f64
    }

    /// Fraction of windows whose relative error for aggregate `idx`
    /// exceeded `target` (windows with undefined error are skipped).
    pub fn error_violation_rate(&self, idx: usize, target: f64) -> f64 {
        let defined: Vec<f64> = self
            .per_window
            .iter()
            .filter_map(|w| w.rel_errors.get(idx).copied().flatten())
            .collect();
        if defined.is_empty() {
            return 0.0;
        }
        defined.iter().filter(|&&e| e > target).count() as f64 / defined.len() as f64
    }
}

/// Relative error between a produced and a true aggregate value.
/// `None` when either side is non-numeric (including `Null`).
pub fn relative_error(produced: &Value, truth: &Value) -> Option<f64> {
    let (p, t) = (produced.as_f64()?, truth.as_f64()?);
    Some((p - t).abs() / t.abs().max(REL_ERROR_EPSILON))
}

/// Score a run's produced results against the oracle's.
///
/// `produced` may contain revisions; only first emissions (revision 0) are
/// scored. Produced windows absent from the oracle (possible only if the run
/// synthesized spurious windows) are ignored — the engine cannot produce
/// them because it only opens windows on real events.
pub fn score(produced: &[WindowResult], oracle: &[WindowResult]) -> QualityReport {
    let mut produced_map: HashMap<(Key, u64, u64), &WindowResult> = HashMap::new();
    for r in produced {
        if r.revision == 0 {
            produced_map.insert(
                (Key(r.key.clone()), r.window.start.raw(), r.window.end.raw()),
                r,
            );
        }
    }
    let n_aggs = oracle.first().map_or(0, |r| r.aggregates.len());
    let mut per_window = Vec::with_capacity(oracle.len());
    let mut missing = 0u64;
    let mut err_sum = vec![0.0f64; n_aggs];
    let mut err_cnt = vec![0u64; n_aggs];
    let mut err_max = vec![0.0f64; n_aggs];
    let mut compl_sum = 0.0;
    let mut compl_min = f64::INFINITY;

    for truth in oracle {
        let keyed = (
            Key(truth.key.clone()),
            truth.window.start.raw(),
            truth.window.end.raw(),
        );
        let found = produced_map.get(&keyed);
        let (completeness, rel_errors, emitted) = match found {
            Some(p) => {
                let completeness = if truth.count == 0 {
                    1.0
                } else {
                    (p.count as f64 / truth.count as f64).min(1.0)
                };
                let rel: Vec<Option<f64>> = truth
                    .aggregates
                    .iter()
                    .enumerate()
                    .map(|(i, t)| p.aggregates.get(i).and_then(|pv| relative_error(pv, t)))
                    .collect();
                (completeness, rel, true)
            }
            None => {
                missing += 1;
                (0.0, vec![Some(1.0); n_aggs], false)
            }
        };
        compl_sum += completeness;
        compl_min = compl_min.min(completeness);
        for (i, e) in rel_errors.iter().enumerate() {
            if let Some(e) = e {
                err_sum[i] += e;
                err_cnt[i] += 1;
                err_max[i] = err_max[i].max(*e);
            }
        }
        per_window.push(WindowQuality {
            window: truth.window,
            key: truth.key.to_string(),
            completeness,
            rel_errors,
            emitted,
        });
    }

    let total = oracle.len() as u64;
    QualityReport {
        windows_total: total,
        windows_missing: missing,
        mean_completeness: if total == 0 {
            1.0
        } else {
            compl_sum / total as f64
        },
        min_completeness: if total == 0 { 1.0 } else { compl_min },
        mean_rel_error: err_sum
            .iter()
            .zip(&err_cnt)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect(),
        max_rel_error: err_max,
        per_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quill_engine::aggregate::AggregateKind;
    use quill_engine::value::Row;

    fn ev(ts: u64, seq: u64, v: f64) -> Event {
        Event::new(ts, seq, Row::new([Value::Float(v)]))
    }

    fn sum_spec() -> Vec<AggregateSpec> {
        vec![AggregateSpec::new(AggregateKind::Sum, 0, "sum")]
    }

    #[test]
    fn oracle_computes_exact_windows() {
        let events = vec![ev(1, 0, 1.0), ev(5, 1, 2.0), ev(12, 2, 4.0)];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &sum_spec(), None);
        assert_eq!(oracle.len(), 2);
        assert_eq!(oracle[0].aggregates[0], Value::Float(3.0));
        assert_eq!(oracle[0].count, 2);
        assert_eq!(oracle[1].aggregates[0], Value::Float(4.0));
    }

    #[test]
    fn oracle_is_arrival_order_independent() {
        let a = vec![ev(1, 0, 1.0), ev(5, 1, 2.0)];
        let b = vec![ev(5, 0, 2.0), ev(1, 1, 1.0)];
        let spec = WindowSpec::sliding(10u64, 5u64);
        let ra = oracle_results(&a, spec, &sum_spec(), None);
        let rb = oracle_results(&b, spec, &sum_spec(), None);
        // Counts/aggregates identical regardless of arrival order.
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.count, y.count);
            assert_eq!(x.aggregates, y.aggregates);
        }
    }

    #[test]
    fn perfect_run_scores_one() {
        let events = vec![ev(1, 0, 1.0), ev(5, 1, 2.0)];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &sum_spec(), None);
        let report = score(&oracle, &oracle);
        assert_eq!(report.windows_missing, 0);
        assert_eq!(report.mean_completeness, 1.0);
        assert_eq!(report.mean_rel_error, vec![0.0]);
        assert_eq!(report.violation_rate(0.99), 0.0);
    }

    #[test]
    fn missing_window_scores_zero() {
        let events = vec![ev(1, 0, 1.0), ev(15, 1, 2.0)];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &sum_spec(), None);
        let produced = vec![oracle[0].clone()];
        let report = score(&produced, &oracle);
        assert_eq!(report.windows_total, 2);
        assert_eq!(report.windows_missing, 1);
        assert!((report.mean_completeness - 0.5).abs() < 1e-12);
        assert_eq!(report.min_completeness, 0.0);
        assert_eq!(report.violation_rate(0.9), 0.5);
        assert!(!report.per_window[1].emitted);
    }

    #[test]
    fn partial_window_scores_fractional_completeness_and_error() {
        let events = vec![ev(1, 0, 1.0), ev(2, 1, 2.0), ev(3, 2, 3.0), ev(4, 3, 4.0)];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &sum_spec(), None);
        // A run that missed the last tuple: count 3, sum 6 (true sum 10).
        let mut partial = oracle[0].clone();
        partial.count = 3;
        partial.aggregates = vec![Value::Float(6.0)];
        let report = score(&[partial], &oracle);
        assert!((report.mean_completeness - 0.75).abs() < 1e-12);
        assert!((report.mean_rel_error[0] - 0.4).abs() < 1e-12);
        assert!((report.max_rel_error[0] - 0.4).abs() < 1e-12);
        assert_eq!(report.error_violation_rate(0, 0.3), 1.0);
        assert_eq!(report.error_violation_rate(0, 0.5), 0.0);
    }

    #[test]
    fn revisions_are_not_scored() {
        let events = vec![ev(1, 0, 1.0)];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &sum_spec(), None);
        let mut rev = oracle[0].clone();
        rev.revision = 1;
        // Only a revision, no first emission → window counts as missing.
        let report = score(&[rev], &oracle);
        assert_eq!(report.windows_missing, 1);
    }

    #[test]
    fn keyed_oracle_separates_groups() {
        let mk = |ts: u64, seq: u64, k: i64, v: f64| {
            Event::new(ts, seq, Row::new([Value::Int(k), Value::Float(v)]))
        };
        let events = vec![mk(1, 0, 1, 1.0), mk(2, 1, 2, 10.0), mk(3, 2, 1, 2.0)];
        let aggs = vec![AggregateSpec::new(AggregateKind::Sum, 1, "sum")];
        let oracle = oracle_results(&events, WindowSpec::tumbling(10u64), &aggs, Some(0));
        assert_eq!(oracle.len(), 2);
        let sums: Vec<f64> = oracle
            .iter()
            .map(|r| r.aggregates[0].as_f64().unwrap())
            .collect();
        assert!(sums.contains(&3.0) && sums.contains(&10.0));
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        let e = relative_error(&Value::Float(0.001), &Value::Float(0.0)).unwrap();
        assert!(e > 1.0); // guarded by epsilon, large but finite
        assert!(relative_error(&Value::Null, &Value::Float(1.0)).is_none());
        assert_eq!(
            relative_error(&Value::Float(5.0), &Value::Float(5.0)),
            Some(0.0)
        );
    }

    #[test]
    fn empty_oracle_is_vacuously_perfect() {
        let report = score(&[], &[]);
        assert_eq!(report.mean_completeness, 1.0);
        assert_eq!(report.violation_rate(0.99), 0.0);
    }
}
