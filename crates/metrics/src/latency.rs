//! Result-latency measurement in event-time units.
//!
//! In the out-of-order literature, the *result latency* of a window is the
//! distance between the window's end and the stream clock (max event
//! timestamp seen) at the moment its result was emitted: it is exactly how
//! long the disorder-control buffer delayed the result beyond the earliest
//! possible emission point. Measuring in event time makes runs reproducible
//! and testbed-independent; wall-clock overhead is measured separately by
//! the criterion benches.

use crate::stats::{StreamingStats, Summary};
use crate::LogHistogram;
use quill_engine::prelude::{TimeDelta, Timestamp};
use serde::{Deserialize, Serialize};

/// Records per-result latencies and summarizes them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRecorder {
    hist: LogHistogram,
    stats: StreamingStats,
    samples: Vec<u64>,
    keep_samples: bool,
}

impl LatencyRecorder {
    /// Recorder that keeps only the histogram + moments (O(1) memory).
    pub fn new() -> LatencyRecorder {
        LatencyRecorder {
            hist: LogHistogram::with_default_precision(),
            stats: StreamingStats::new(),
            samples: Vec::new(),
            keep_samples: false,
        }
    }

    /// Recorder that additionally retains every raw sample (exact
    /// percentiles; used by the experiment harness).
    pub fn with_samples() -> LatencyRecorder {
        let mut r = LatencyRecorder::new();
        r.keep_samples = true;
        r
    }

    /// Record a latency observation.
    pub fn record(&mut self, latency: TimeDelta) {
        self.hist.record(latency.raw());
        self.stats.push(latency.as_f64());
        if self.keep_samples {
            self.samples.push(latency.raw());
        }
    }

    /// Record the latency of a result for window ending at `window_end`,
    /// emitted when the stream clock stood at `clock`.
    pub fn record_emission(&mut self, window_end: Timestamp, clock: Timestamp) {
        self.record(clock.delta_since(window_end));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency in time units.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Approximate quantile from the histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q)
    }

    /// Largest observed latency.
    pub fn max(&self) -> Option<u64> {
        self.hist.max()
    }

    /// Full summary. Uses exact raw samples when retained, otherwise the
    /// histogram approximation.
    pub fn summary(&self) -> Summary {
        if self.keep_samples {
            let sample: Vec<f64> = self.samples.iter().map(|&v| v as f64).collect();
            Summary::of(&sample)
        } else {
            Summary {
                count: self.stats.count(),
                mean: self.stats.mean(),
                stddev: self.stats.stddev(),
                min: self.hist.min().unwrap_or(0) as f64,
                p50: self.hist.quantile(0.50).unwrap_or(0) as f64,
                p90: self.hist.quantile(0.90).unwrap_or(0) as f64,
                p99: self.hist.quantile(0.99).unwrap_or(0) as f64,
                max: self.hist.max().unwrap_or(0) as f64,
            }
        }
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_emission_latency() {
        let mut r = LatencyRecorder::new();
        r.record_emission(Timestamp(100), Timestamp(130));
        r.record_emission(Timestamp(200), Timestamp(210));
        assert_eq!(r.count(), 2);
        assert!((r.mean() - 20.0).abs() < 1e-12);
        assert_eq!(r.max(), Some(30));
    }

    #[test]
    fn emission_before_window_end_is_zero_latency() {
        let mut r = LatencyRecorder::new();
        r.record_emission(Timestamp(100), Timestamp(90));
        assert_eq!(r.max(), Some(0));
    }

    #[test]
    fn summary_with_samples_is_exact() {
        let mut r = LatencyRecorder::with_samples();
        for v in [10u64, 20, 30, 40] {
            r.record(TimeDelta(v));
        }
        let s = r.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 40.0);
        assert!((s.p50 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn summary_without_samples_uses_histogram() {
        let mut r = LatencyRecorder::new();
        for v in 0..1000u64 {
            r.record(TimeDelta(v));
        }
        let s = r.summary();
        assert_eq!(s.count, 1000);
        // Histogram p50 is within precision of the true median ~500.
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.02, "p50={}", s.p50);
    }

    #[test]
    fn empty_recorder() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.summary().count, 0);
    }
}
