//! # quill-metrics
//!
//! Measurement and reporting for quality-driven out-of-order query
//! execution:
//!
//! * [`stats`] — streaming moments, batch summaries, percentiles, ECDF;
//! * [`LogHistogram`] — HDR-style log-bucketed histogram for latency/delay
//!   distributions with bounded relative quantile error (re-exported from
//!   `quill-telemetry`, where it also backs registry histograms);
//! * [`latency`] — per-result latency recording in event-time units;
//! * [`timeseries`] — `(time, value)` series for adaptivity plots;
//! * [`quality_eval`] — the in-order oracle plus per-window quality scoring
//!   (completeness, relative aggregate error, violation rates);
//! * [`report`] — markdown/CSV table rendering used by the experiment
//!   harness.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod latency;
pub mod quality_eval;
pub mod report;
pub mod stats;
pub mod timeseries;

pub use latency::LatencyRecorder;
pub use quality_eval::{oracle_results, relative_error, score, QualityReport, WindowQuality};
pub use quill_telemetry::LogHistogram;
pub use report::{fmt_f64, Table};
pub use stats::{ecdf_sorted, percentile_sorted, StreamingStats, Summary};
pub use timeseries::TimeSeries;
